"""End-to-end tests for Synthesize (Algorithm 1)."""

import datetime as dt

import pytest

from repro.core import (
    OPTIMAL,
    SIA_DEFAULT,
    SIA_V1,
    SIA_V2,
    TRIVIAL,
    UNSUPPORTED,
    Synthesizer,
    synthesize,
)
from repro.predicates import (
    Col,
    Column,
    Comparison,
    DATE,
    DOUBLE,
    INTEGER,
    Lit,
    eval_pred_py,
    pand,
    por,
)

A1 = Column("t", "a1", INTEGER)
A2 = Column("t", "a2", INTEGER)
B1 = Column("t", "b1", INTEGER)


def motivating_pred():
    """a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0 (section 3.2)."""
    return pand(
        [
            Comparison(Col(A2) - Col(B1), "<", Lit.integer(20)),
            Comparison(
                Col(A1) - Col(A2), "<", (Col(A2) - Col(B1)) + Lit.integer(10)
            ),
            Comparison(Col(B1), "<", Lit.integer(0)),
        ]
    )


def brute_force_feasible(pred, targets, grid):
    """Ground truth: is a restriction feasible (some extension satisfies)?"""
    others = sorted(set(pred.columns()) - set(targets))

    def feasible(assignment):
        def rec(i, row):
            if i == len(others):
                return eval_pred_py(pred, row) is True
            for v in grid:
                row[others[i]] = v
                if rec(i + 1, row):
                    return True
            return False

        return rec(0, dict(assignment))

    return feasible


# ----------------------------------------------------------------------
def test_one_column_a2_optimal():
    out = synthesize(motivating_pred(), {A2})
    assert out.status == OPTIMAL
    # Ground truth: feasible iff a2 <= 18.
    assert eval_pred_py(out.predicate, {A2: 18}) is True
    assert eval_pred_py(out.predicate, {A2: 19}) is False
    assert eval_pred_py(out.predicate, {A2: -100}) is True


def test_one_column_a1_optimal():
    out = synthesize(motivating_pred(), {A1})
    assert out.status == OPTIMAL
    # Ground truth: feasible iff a1 <= 46 (a1 <= a2 + 28, a2 <= 18).
    assert eval_pred_py(out.predicate, {A1: 46}) is True
    assert eval_pred_py(out.predicate, {A1: 47}) is False


def test_one_column_b1_trivial_region_is_optimal():
    out = synthesize(motivating_pred(), {B1})
    assert out.status == OPTIMAL
    assert eval_pred_py(out.predicate, {B1: -1}) is True
    assert eval_pred_py(out.predicate, {B1: 0}) is False


def test_two_columns_valid_and_sound():
    out = synthesize(motivating_pred(), {A1, A2})
    assert out.is_valid
    # Soundness: every feasible restriction must be accepted.
    # Feasible iff a1 - a2 <= 28 and a2 <= 18.
    for a1, a2 in [(0, 0), (28, 0), (46, 18), (-50, -10), (-100, 18)]:
        assert eval_pred_py(out.predicate, {A1: a1, A2: a2}) is True, (a1, a2)


def test_validity_invariant_against_bruteforce():
    """Every sample the original predicate accepts (projected) must be
    accepted by the synthesized predicate -- checked by brute force."""
    pred = pand(
        [
            Comparison(Col(A1) - Col(B1), "<", Lit.integer(5)),
            Comparison(Col(B1), "<", Lit.integer(3)),
        ]
    )
    out = synthesize(pred, {A1})
    assert out.is_valid
    grid = range(-12, 12)
    for a1 in grid:
        for b1 in grid:
            if eval_pred_py(pred, {A1: a1, B1: b1}) is True:
                assert eval_pred_py(out.predicate, {A1: a1}) is True, (a1, b1)


def test_optimality_against_bruteforce():
    pred = pand(
        [
            Comparison(Col(A1) - Col(B1), "<", Lit.integer(5)),
            Comparison(Col(B1), "<", Lit.integer(3)),
        ]
    )
    out = synthesize(pred, {A1})
    assert out.status == OPTIMAL
    # Feasible iff a1 < 5 + b1 for some b1 < 3, i.e. a1 <= 6.
    assert eval_pred_py(out.predicate, {A1: 6}) is True
    assert eval_pred_py(out.predicate, {A1: 7}) is False


def test_trivial_when_no_unsatisfaction_tuples():
    # p touches b1 only; any a1 restriction is feasible.
    pred = pand(
        [
            Comparison(Col(B1), "<", Lit.integer(3)),
            Comparison(Col(A1), "<", Col(B1) + Lit.integer(10**6)),
        ]
    )
    # a1's feasible region is a1 < 10**6 + b1, unbounded below; over the
    # box everything is feasible... use a predicate where a1 is truly
    # unconstrained relative to b1:
    pred = Comparison(Col(A1) - Col(A1), "<=", Col(B1))  # degenerate
    out = synthesize(
        pand([Comparison(Col(B1), ">=", Lit.integer(0))]), {B1}
    )
    # b1 >= 0 with target {b1}: region b1 < 0 nonempty -> optimal.
    assert out.status == OPTIMAL


def test_unsupported_empty_targets():
    out = synthesize(motivating_pred(), set())
    assert out.status == UNSUPPORTED


def test_unsupported_target_not_in_predicate():
    other = Column("t", "zz", INTEGER)
    out = synthesize(motivating_pred(), {other})
    assert out.status == UNSUPPORTED


def test_dates_roundtrip_through_synthesis():
    ship = Column("lineitem", "l_shipdate", DATE)
    order = Column("orders", "o_orderdate", DATE)
    pred = pand(
        [
            Comparison(Col(ship) - Col(order), "<", Lit.integer(20)),
            Comparison(Col(order), "<", Lit.date("1993-06-01")),
        ]
    )
    out = synthesize(pred, {ship})
    assert out.status == OPTIMAL
    # Feasible iff shipdate <= 1993-06-19 (order <= May 31, ship-order <= 19).
    assert eval_pred_py(out.predicate, {ship: dt.date(1993, 6, 19)}) is True
    assert eval_pred_py(out.predicate, {ship: dt.date(1993, 6, 20)}) is False


def test_finite_true_fallback():
    pred = pand(
        [
            Comparison(Col(A1), ">=", Lit.integer(0)),
            Comparison(Col(A1), "<=", Lit.integer(3)),
            Comparison(Col(B1), ">", Col(A1)),
        ]
    )
    out = synthesize(pred, {A1})
    assert out.status == OPTIMAL
    for v in (0, 1, 2, 3):
        assert eval_pred_py(out.predicate, {A1: v}) is True
    assert eval_pred_py(out.predicate, {A1: 4}) is False
    assert eval_pred_py(out.predicate, {A1: -1}) is False


def test_single_shot_variants_run():
    pred = motivating_pred()
    for config in (SIA_V1, SIA_V2):
        out = Synthesizer(config).synthesize(pred, {A2})
        assert out.iterations <= 1
        if out.is_valid:
            # Validity invariant spot-check.
            assert eval_pred_py(out.predicate, {A2: 0}) is True


def test_outcome_statistics_populated():
    out = synthesize(motivating_pred(), {A2})
    assert out.true_samples >= SIA_DEFAULT.initial_true_samples
    assert out.false_samples >= SIA_DEFAULT.initial_false_samples
    assert out.timings.total_ms > 0
    assert out.trace
    assert out.target_columns == ("t.a2",)


def test_disjunctive_original_with_nulls_cannot_be_synthesized():
    """3VL gap: p = (a1 > 5 OR b1 > 0) is TRUE on (NULL-a1, b1=1) but
    any predicate over {a1} filters that tuple (section 5.2)."""
    pred = por(
        [
            Comparison(Col(A1), ">", Lit.integer(5)),
            Comparison(Col(B1), ">", Lit.integer(0)),
        ]
    )
    out = synthesize(pred, {A1})
    assert out.status in ("failed", "trivial")


def test_double_columns():
    price = Column("t", "p", DOUBLE)
    disc = Column("t", "d", DOUBLE)
    pred = pand(
        [
            Comparison(Col(price) - Col(disc), "<", Lit.double(5.0)),
            Comparison(Col(disc), "<", Lit.double(2.0)),
        ]
    )
    out = synthesize(pred, {price})
    assert out.is_valid
    # price < 5 + disc with disc < 2 -> price < 7 is the optimal region.
    assert eval_pred_py(out.predicate, {price: 6.9}) is True
    assert eval_pred_py(out.predicate, {price: 8.0}) is False


def test_limitation_non_separable_section_6_7():
    """a > b && a < b + 50 && b > 0 && b < 150: FALSE samples lie on
    both sides of TRUE samples (the paper's section 6.7 failure mode).

    Ground truth over the integers: a is feasible iff 2 <= a <= 198
    (a <= b + 49 <= 149 + 49; a >= b + 1 >= 2).  Sia must never emit an
    invalid predicate; with the iterative loop it can even recover the
    optimal two-sided interval here (one bound per learned plane)."""
    a = Column("t", "a", INTEGER)
    b = Column("t", "b", INTEGER)
    pred = pand(
        [
            Comparison(Col(a), ">", Col(b)),
            Comparison(Col(a), "<", Col(b) + Lit.integer(50)),
            Comparison(Col(b), ">", Lit.integer(0)),
            Comparison(Col(b), "<", Lit.integer(150)),
        ]
    )
    out = synthesize(pred, {a})
    if out.is_valid:
        for v in (2, 50, 198):
            assert eval_pred_py(out.predicate, {a: v}) is True, v
    if out.is_optimal:
        for v in (1, 199, 250):
            assert eval_pred_py(out.predicate, {a: v}) is False, v
