"""Tests for Verify under three-valued logic (section 5.2/5.5)."""

from repro.core import verify_implied
from repro.core.verify import learned_truth_formula, plane_truth_formula
from repro.learn import DisjunctivePredicate, Hyperplane
from repro.predicates import (
    Col,
    Column,
    Comparison,
    INTEGER,
    Lit,
    LinearizationContext,
    lower_predicate,
    pand,
    por,
)
from repro.smt import Not, conj, is_satisfiable

A = Column("t", "a", INTEGER)
B = Column("t", "b", INTEGER)


def ctx_for(pred):
    _, ctx = lower_predicate(pred)
    return ctx


def test_weaker_predicate_is_valid():
    pred = pand(
        [
            Comparison(Col(A), ">", Lit.integer(5)),
            Comparison(Col(B), ">", Lit.integer(0)),
        ]
    )
    ctx = ctx_for(pred)
    # a > 0 (weaker than a > 5)
    plane = Hyperplane(((ctx.var(A), 1),), 0)
    assert verify_implied(pred, DisjunctivePredicate((plane,)), ctx)


def test_stronger_predicate_is_invalid():
    pred = Comparison(Col(A), ">", Lit.integer(5))
    ctx = ctx_for(pred)
    plane = Hyperplane(((ctx.var(A), 1),), -10)  # a > 10
    assert not verify_implied(pred, DisjunctivePredicate((plane,)), ctx)


def test_equivalent_predicate_is_valid():
    pred = Comparison(Col(A), ">", Lit.integer(5))
    ctx = ctx_for(pred)
    plane = Hyperplane(((ctx.var(A), 1),), -5)  # a > 5
    assert verify_implied(pred, DisjunctivePredicate((plane,)), ctx)


def test_disjunctive_learned_predicate():
    pred = Comparison(Col(A), ">", Lit.integer(5))
    ctx = ctx_for(pred)
    learned = DisjunctivePredicate(
        (
            Hyperplane(((ctx.var(A), 1),), -10),  # a > 10
            Hyperplane(((ctx.var(A), 1),), 0),  # a > 0
        )
    )
    assert verify_implied(pred, learned, ctx)


def test_null_gap_makes_disjunctive_original_unverifiable():
    """p = (a > 5 OR b > 0) can be TRUE with a NULL (b = 3), but any
    learned predicate over {a} alone evaluates NULL there and filters
    the tuple: validity must fail under 3VL."""
    pred = por(
        [
            Comparison(Col(A), ">", Lit.integer(5)),
            Comparison(Col(B), ">", Lit.integer(0)),
        ]
    )
    ctx = ctx_for(pred)
    # The weakest possible non-trivial predicate over {a}: a > -huge.
    plane = Hyperplane(((ctx.var(A), 1),), 10**9)
    assert not verify_implied(pred, DisjunctivePredicate((plane,)), ctx)


def test_conjunctive_original_unaffected_by_nulls():
    """For conjunctive p every target column occurring in some conjunct
    forces non-NULL whenever p is TRUE, so 3VL verification passes."""
    pred = pand(
        [
            Comparison(Col(A), ">", Lit.integer(5)),
            Comparison(Col(B), ">", Lit.integer(0)),
        ]
    )
    ctx = ctx_for(pred)
    plane = Hyperplane(((ctx.var(A), 1), (ctx.var(B), 1)), 0)  # a + b > 0
    assert verify_implied(pred, DisjunctivePredicate((plane,)), ctx)


def test_plane_truth_requires_non_null():
    pred = Comparison(Col(A), ">", Lit.integer(5))
    ctx = ctx_for(pred)
    plane = Hyperplane(((ctx.var(A), 1),), 0)
    truth = plane_truth_formula(plane, ctx)
    assert not is_satisfiable(conj([truth, ctx.null_flag(A)]))
    assert is_satisfiable(conj([truth, Not(ctx.null_flag(A))]))


def test_learned_truth_formula_is_disjunction_of_plane_truths():
    pred = pand(
        [
            Comparison(Col(A), ">", Lit.integer(0)),
            Comparison(Col(B), ">", Lit.integer(0)),
        ]
    )
    ctx = ctx_for(pred)
    learned = DisjunctivePredicate(
        (
            Hyperplane(((ctx.var(A), 1),), 0),
            Hyperplane(((ctx.var(B), 1),), 0),
        )
    )
    truth = learned_truth_formula(learned, ctx)
    # TRUE via the b-plane even when a is NULL.
    assert is_satisfiable(conj([truth, ctx.null_flag(A)]))
    # But not when both are NULL.
    assert not is_satisfiable(
        conj([truth, ctx.null_flag(A), ctx.null_flag(B)])
    )
