"""Tests for training-sample generation (section 5.3)."""

import random

from repro.core import SIA_DEFAULT, Sampler, SiaConfig, enumerate_all, not_old_formula
from repro.core.samples import IncrementalEnumerator, box_formula
from repro.smt import LinExpr, Var, compare, conj, is_satisfiable

X = Var("x")
Y = Var("y")
ex, ey = LinExpr.var(X), LinExpr.var(Y)
c = LinExpr.const_expr


def make_sampler(seed=0, **overrides):
    config = SiaConfig(seed=seed, **overrides)
    return Sampler(config, random.Random(seed))


def test_samples_satisfy_base_formula():
    base = conj([compare(ex + ey, "<", c(10)), compare(ex, ">", ey)])
    sampler = make_sampler()
    result = sampler.sample(base, [X, Y], 12)
    assert len(result.points) == 12
    for point in result.points:
        assert point[X] + point[Y] < 10
        assert point[X] > point[Y]


def test_samples_are_distinct():
    base = compare(ex, ">=", c(0))
    result = make_sampler().sample(base, [X], 20)
    values = [point[X] for point in result.points]
    assert len(set(values)) == 20


def test_samples_respect_existing_exclusions():
    base = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(5))])
    existing = [{X: v} for v in (0, 1, 2)]
    result = make_sampler().sample(base, [X], 3, existing=existing)
    new_values = {int(point[X]) for point in result.points}
    assert new_values == {3, 4, 5}


def test_exhaustion_reported():
    base = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(2))])
    result = make_sampler().sample(base, [X], 10)
    assert result.exhausted
    assert {int(p[X]) for p in result.points} == {0, 1, 2}


def test_unsat_base_yields_empty_exhausted():
    base = conj([compare(ex, "<", c(0)), compare(ex, ">", c(0))])
    result = make_sampler().sample(base, [X], 5)
    assert result.exhausted
    assert result.points == []


def test_solutions_outside_box_still_found():
    """If the only models lie beyond the sampling box, the sampler
    must relax the box rather than declare exhaustion."""
    box = SIA_DEFAULT.sample_box
    base = compare(ex, ">", c(box * 10))
    result = make_sampler().sample(base, [X], 3)
    assert len(result.points) == 3
    assert all(point[X] > box * 10 for point in result.points)


def test_random_box_diversity_beats_sequential():
    base = compare(ex, ">=", c(-SIA_DEFAULT.sample_box))
    diverse = make_sampler(seed=3).sample(base, [X], 15).points
    sequential = make_sampler(seed=3, sampling_strategy="sequential").sample(
        base, [X], 15
    ).points
    spread = lambda pts: max(p[X] for p in pts) - min(p[X] for p in pts)  # noqa: E731
    assert spread(diverse) > spread(sequential)


def test_determinism_given_seed():
    base = conj([compare(ex + ey, "<", c(50))])
    a = make_sampler(seed=7).sample(base, [X, Y], 8).points
    b = make_sampler(seed=7).sample(base, [X, Y], 8).points
    assert a == b


def test_not_old_formula_blocks_points():
    points = [{X: 1, Y: 2}]
    formula = not_old_formula(points, [X, Y])
    fixed = conj([compare(ex, "=", c(1)), compare(ey, "=", c(2))])
    assert not is_satisfiable(conj([formula, fixed]))
    other = conj([compare(ex, "=", c(1)), compare(ey, "=", c(3))])
    assert is_satisfiable(conj([formula, other]))


def test_box_formula():
    formula = box_formula([X], 5)
    assert is_satisfiable(conj([formula, compare(ex, "=", c(5))]))
    assert not is_satisfiable(conj([formula, compare(ex, "=", c(6))]))


def test_enumerate_all_complete():
    base = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(4))])
    result = enumerate_all(base, [X], 100)
    assert result.exhausted
    assert sorted(int(p[X]) for p in result.points) == [0, 1, 2, 3, 4]


def test_enumerate_all_limit():
    base = compare(ex, ">=", c(0))
    result = enumerate_all(base, [X], 7)
    assert not result.exhausted
    assert len(result.points) == 7


def test_incremental_enumerator_add():
    base = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(10))])
    enum = IncrementalEnumerator(base, [X], [], SIA_DEFAULT, with_box=True)
    first = enum.next([])
    assert first is not None
    enum.add(compare(ex, ">=", c(9)))
    seen = [first]
    values = set()
    while True:
        point = enum.next(seen)
        if point is None:
            break
        seen.append(point)
        values.add(int(point[X]))
    assert values <= {9, 10}
    assert 9 in values or 10 in values
