"""Tests for syntax-driven baselines (transitive closure, constant
propagation)."""

from repro.core import constant_propagation, transitive_closure_predicate
from repro.core.verify import verify_implied
from repro.predicates import (
    Col,
    Column,
    Comparison,
    INTEGER,
    Lit,
    eval_pred_py,
    pand,
)

X = Column("t", "x", INTEGER)
Y = Column("t", "y", INTEGER)
Z = Column("t", "z", INTEGER)


def test_chain_through_middle_variable():
    # y > x AND x > z  =>  y > z (paper's transitive closure example).
    pred = pand(
        [
            Comparison(Col(Y), ">", Col(X)),
            Comparison(Col(X), ">", Col(Z)),
        ]
    )
    derived = transitive_closure_predicate(pred, {Y, Z})
    assert derived is not None
    assert eval_pred_py(derived, {Y: 5, Z: 3}) is True
    assert eval_pred_py(derived, {Y: 3, Z: 5}) is False


def test_chain_to_constant_bound():
    # x < y AND y < 10  =>  x < 9 over integers.
    pred = pand(
        [
            Comparison(Col(X), "<", Col(Y)),
            Comparison(Col(Y), "<", Lit.integer(10)),
        ]
    )
    derived = transitive_closure_predicate(pred, {X})
    assert derived is not None
    assert eval_pred_py(derived, {X: 8}) is True
    assert eval_pred_py(derived, {X: 20}) is False


def test_derived_predicate_is_sound():
    pred = pand(
        [
            Comparison(Col(X), "<=", Col(Y) + Lit.integer(3)),
            Comparison(Col(Y), "<=", Col(Z) - Lit.integer(2)),
            Comparison(Col(Z), "<=", Lit.integer(7)),
        ]
    )
    derived = transitive_closure_predicate(pred, {X})
    assert derived is not None
    # Soundness grid check: p(x,y,z) -> derived(x).
    for x in range(-5, 15):
        for y in range(-5, 15):
            for z in range(-5, 15):
                if eval_pred_py(pred, {X: x, Y: y, Z: z}) is True:
                    assert eval_pred_py(derived, {X: x}) is True, (x, y, z)


def test_cannot_handle_three_variable_terms():
    """The paper's motivating case: a1 - 2*a2 + b1 < 10 style conjuncts
    are outside the difference-constraint fragment."""
    pred = pand(
        [
            Comparison(
                Col(X) - Lit.integer(2) * Col(Y) + Col(Z), "<", Lit.integer(10)
            ),
            Comparison(Col(Z), "<", Lit.integer(0)),
        ]
    )
    derived = transitive_closure_predicate(pred, {X, Y})
    assert derived is None


def test_no_derivation_when_disconnected():
    pred = pand(
        [
            Comparison(Col(X), "<", Lit.integer(5)),
            Comparison(Col(Y), ">", Lit.integer(0)),
        ]
    )
    # x and y never interact: nothing new about {x, y} jointly...
    derived = transitive_closure_predicate(pred, {Z} | {X})
    assert derived is None  # z absent from the predicate


def test_existing_conjuncts_not_rederived():
    pred = Comparison(Col(X), "<", Lit.integer(5))
    derived = transitive_closure_predicate(pred, {X})
    assert derived is None  # already syntactically present


def test_strictness_preserved():
    pred = pand(
        [
            Comparison(Col(X), "<", Col(Y)),
            Comparison(Col(Y), "<=", Lit.integer(3)),
        ]
    )
    derived = transitive_closure_predicate(pred, {X})
    assert derived is not None
    assert eval_pred_py(derived, {X: 3}) is False
    assert eval_pred_py(derived, {X: 2}) is True


def test_equality_edges():
    pred = pand(
        [
            Comparison(Col(X), "=", Col(Y)),
            Comparison(Col(Y), "<=", Lit.integer(4)),
        ]
    )
    derived = transitive_closure_predicate(pred, {X})
    assert derived is not None
    assert eval_pred_py(derived, {X: 4}) is True
    assert eval_pred_py(derived, {X: 5}) is False


# ----------------------------------------------------------------------
def test_constant_propagation():
    # x = 5 AND x + y = 20 -> 5 + y = 20 (paper's example).
    pred = pand(
        [
            Comparison(Col(X), "=", Lit.integer(5)),
            Comparison(Col(X) + Col(Y), "=", Lit.integer(20)),
        ]
    )
    result = constant_propagation(pred)
    conjuncts = list(result.conjuncts())
    assert len(conjuncts) == 2
    second = conjuncts[1]
    assert X not in second.columns()
    assert eval_pred_py(second, {Y: 15}) is True
    assert eval_pred_py(second, {Y: 14}) is False


def test_constant_propagation_no_equalities_is_identity():
    pred = Comparison(Col(X), "<", Lit.integer(5))
    assert constant_propagation(pred) is pred
