"""Property-based validation of the full synthesis pipeline.

For random small bounded predicates, any synthesized predicate must be
*valid* (accept every feasible restriction, checked by brute force) and
any OPTIMAL outcome must also reject every unsatisfaction tuple.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SiaConfig, synthesize
from repro.predicates import (
    Col,
    Column,
    Comparison,
    INTEGER,
    Lit,
    eval_pred_py,
    pand,
)

A = Column("t", "a", INTEGER)
B = Column("t", "b", INTEGER)

FAST = SiaConfig(max_iterations=8, seed=0, initial_true_samples=6, initial_false_samples=6)

GRID = range(-15, 16)


@st.composite
def bounded_predicates(draw):
    """Conjunctions over (a, b) with b boxed, so restrictions of `a`
    have a finite ground truth."""
    rng = random.Random(draw(st.integers(0, 10_000)))
    atoms = [
        Comparison(Col(B), ">=", Lit.integer(GRID.start)),
        Comparison(Col(B), "<=", Lit.integer(GRID.stop - 1)),
    ]
    for _ in range(rng.randint(1, 3)):
        lhs = Col(A) if rng.random() < 0.4 else Col(A) - Col(B)
        op = rng.choice(["<", "<=", ">", ">="])
        atoms.append(Comparison(lhs, op, Lit.integer(rng.randint(-12, 12))))
    return pand(atoms)


def feasible(pred, a_value):
    return any(
        eval_pred_py(pred, {A: a_value, B: b_value}) is True for b_value in GRID
    )


@settings(max_examples=15, deadline=None)
@given(pred=bounded_predicates())
def test_synthesized_predicate_validity_property(pred):
    outcome = synthesize(pred, {A}, FAST)
    if not outcome.is_valid or outcome.predicate is None:
        return
    for a_value in GRID:
        if feasible(pred, a_value):
            assert eval_pred_py(outcome.predicate, {A: a_value}) is True, (
                pred,
                outcome.predicate,
                a_value,
            )


@settings(max_examples=15, deadline=None)
@given(pred=bounded_predicates())
def test_optimal_outcomes_reject_unsatisfaction_tuples(pred):
    outcome = synthesize(pred, {A}, FAST)
    if outcome.status != "optimal" or outcome.predicate is None:
        return
    if not outcome.optimal_exact:
        return
    for a_value in GRID:
        if not feasible(pred, a_value):
            assert eval_pred_py(outcome.predicate, {A: a_value}) is not True, (
                pred,
                outcome.predicate,
                a_value,
            )
