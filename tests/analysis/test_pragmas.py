"""Pragma extraction edge cases: blocks, lists, decorated defs."""

from repro.analysis.pragmas import extract_pragmas, is_suppressed


def test_inline_pragma_covers_its_own_line_only():
    pragmas = extract_pragmas(
        "x = 1.5  # sia: allow-float\n"
        "y = 2.5\n"
    )
    assert is_suppressed(pragmas, 1, "SIA001")
    assert not is_suppressed(pragmas, 2, "SIA001")


def test_allow_float_covers_the_interprocedural_rule_too():
    pragmas = extract_pragmas("x = 1.5  # sia: allow-float\n")
    assert is_suppressed(pragmas, 1, "SIA401")


def test_comment_block_extends_across_multiple_lines():
    pragmas = extract_pragmas(
        "# sia: allow-float -- documented crossing: the SVM is\n"
        "# float-native; rationalization restores exactness\n"
        "# downstream of this boundary.\n"
        "bias = float(raw)\n"
        "other = float(raw)\n"
    )
    for line in (1, 2, 3, 4):
        assert is_suppressed(pragmas, line, "SIA002"), line
    # The block ends at the first code line; later lines are live.
    assert not is_suppressed(pragmas, 5, "SIA002")


def test_allow_list_with_whitespace():
    pragmas = extract_pragmas(
        "do_thing()  # sia: allow( SIA004 , SIA005 )\n"
    )
    assert is_suppressed(pragmas, 1, "SIA004")
    assert is_suppressed(pragmas, 1, "SIA005")
    assert not is_suppressed(pragmas, 1, "SIA006")


def test_pragma_block_reaches_past_decorators_to_the_def():
    pragmas = extract_pragmas(
        "# sia: allow(SIA007) -- adapter class, not a hot-path node\n"
        "@register\n"
        "@functools.wraps(base)\n"
        "def shim(x):\n"
        "    return x\n"
    )
    # Findings anchor at the def line, not the decorator lines.
    assert is_suppressed(pragmas, 4, "SIA007")
    assert is_suppressed(pragmas, 2, "SIA007")
    assert not is_suppressed(pragmas, 5, "SIA007")


def test_indented_comment_block_extends():
    pragmas = extract_pragmas(
        "def f(session):\n"
        "    # sia: allow(SIA403) -- process-lifetime scope, never\n"
        "    # retracted by design.\n"
        "    scope = session.push(None)\n"
        "    return scope\n"
    )
    assert is_suppressed(pragmas, 4, "SIA403")
    assert not is_suppressed(pragmas, 5, "SIA403")


def test_code_line_pragma_does_not_extend():
    pragmas = extract_pragmas(
        "x = 1.5  # sia: allow-float\n"
        "@decorator\n"
        "def f():\n"
        "    pass\n"
    )
    assert not is_suppressed(pragmas, 2, "SIA001")
    assert not is_suppressed(pragmas, 3, "SIA001")
