"""Invariant-checker tests: well-formed trees pass; trees corrupted by
bypassing the constructors are caught with the right rule ID."""

from fractions import Fraction

from repro.analysis import check_formula, check_pred
from repro.predicates import Col, Column, Comparison, Lit, PNot, pand
from repro.predicates.expr import INTEGER, PAnd
from repro.smt import Atom, LE, LinExpr, Var, conj, disj, le, lt, negate
from repro.smt.formula import And

X = Var("x")
Y = Var("y")
COL_X = Col(Column("t", "x", INTEGER))
COL_Y = Col(Column("t", "y", INTEGER))


def _rules(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Clean trees
# ----------------------------------------------------------------------
def test_wellformed_formula_is_clean():
    formula = conj(
        [
            le(LinExpr.var(X), LinExpr.const_expr(5)),
            disj(
                [
                    lt(LinExpr.var(Y), LinExpr.var(X)),
                    negate(le(LinExpr.var(Y), LinExpr.const_expr(0))),
                ]
            ),
        ]
    )
    assert check_formula(formula) == []


def test_wellformed_pred_is_clean():
    pred = pand(
        [
            Comparison(COL_X, "<", Lit.integer(5)),
            PNot(Comparison(COL_Y, ">=", COL_X)),
        ]
    )
    assert check_pred(pred) == []


def test_shared_immutable_subtrees_are_allowed():
    # Formulas are DAGs by design: the same atom under two parents is
    # legitimate sharing, not aliasing.
    atom = le(LinExpr.var(X), LinExpr.const_expr(5))
    formula = disj([conj([atom, lt(LinExpr.var(Y), LinExpr.var(X))]), negate(atom)])
    assert check_formula(formula) == []


# ----------------------------------------------------------------------
# Corrupted trees (constructors bypassed on purpose)
#
# Formula nodes are hash-consed: the constructors return canonical
# shared instances, so mutating one in place would poison the intern
# table for every later test (and every later formula in the process).
# Corruption therefore happens on *detached* clones built with
# object.__new__, which never enter the intern tables.
# ----------------------------------------------------------------------
def _detached_expr(expr):
    clone = object.__new__(LinExpr)
    object.__setattr__(clone, "coeffs", dict(expr.coeffs))
    object.__setattr__(clone, "const", expr.const)
    object.__setattr__(clone, "_hash", expr._hash)
    return clone


def _detached_atom(atom):
    clone = object.__new__(Atom)
    object.__setattr__(clone, "expr", _detached_expr(atom.expr))
    object.__setattr__(clone, "op", atom.op)
    return clone


def _detached_and(args):
    args = tuple(args)
    clone = object.__new__(And)
    object.__setattr__(clone, "args", args)
    object.__setattr__(clone, "_hash", hash(("And", args)))
    return clone



def test_arity_violation_is_caught():
    starved = And([le(LinExpr.var(X), LinExpr.const_expr(5))])
    assert "SIA101" in _rules(check_formula(starved))
    starved_pred = PAnd((Comparison(COL_X, "<", Lit.integer(5)),))
    assert "SIA101" in _rules(check_pred(starved_pred))


def test_unknown_atom_operator_is_caught():
    atom = _detached_atom(Atom(LinExpr.var(X), LE))
    object.__setattr__(atom, "op", "LIKE")
    assert "SIA101" in _rules(check_formula(atom))


def test_float_coefficient_is_caught():
    atom = _detached_atom(Atom(LinExpr.var(X), LE))
    object.__setattr__(atom.expr, "coeffs", {X: 0.5})
    assert "SIA102" in _rules(check_formula(atom))


def test_float_constant_term_is_caught():
    atom = _detached_atom(Atom(LinExpr.var(X), LE))
    object.__setattr__(atom.expr, "const", 0.25)
    assert "SIA102" in _rules(check_formula(atom))


def test_bool_coefficient_is_caught():
    atom = _detached_atom(Atom(LinExpr.var(X), LE))
    object.__setattr__(atom.expr, "coeffs", {X: True})
    assert "SIA102" in _rules(check_formula(atom))


def test_mistyped_literal_is_caught():
    lit = Lit.integer(5)
    object.__setattr__(lit, "value", 5.0)
    pred = Comparison(COL_X, "<", lit)
    assert "SIA102" in _rules(check_pred(pred))


def test_aliased_coefficient_map_is_caught():
    a1 = _detached_atom(Atom(LinExpr({X: 1}, 0), LE))
    a2 = _detached_atom(Atom(LinExpr({X: 2}, 1), LE))
    object.__setattr__(a2.expr, "coeffs", a1.expr.coeffs)
    formula = _detached_and([a1, a2])
    assert "SIA103" in _rules(check_formula(formula))


def test_cycle_is_caught():
    inner = PNot(Comparison(COL_X, "<", Lit.integer(5)))
    object.__setattr__(inner, "arg", inner)
    assert "SIA104" in _rules(check_pred(inner))


def test_formula_cycle_is_caught():
    node = _detached_and(
        [
            le(LinExpr.var(X), LinExpr.const_expr(5)),
            le(LinExpr.var(Y), LinExpr.const_expr(5)),
        ]
    )
    object.__setattr__(node, "args", (node, le(LinExpr.var(X), LinExpr.const_expr(5))))
    assert "SIA104" in _rules(check_formula(node))


def test_foreign_object_is_caught():
    polluted = _detached_and([le(LinExpr.var(X), LinExpr.const_expr(5)), "not a formula"])
    assert "SIA102" in _rules(check_formula(polluted))


def test_exact_fraction_coefficients_are_clean():
    atom = Atom(LinExpr({X: Fraction(1, 3), Y: 2}, Fraction(-7, 2)), LE)
    assert check_formula(atom) == []
