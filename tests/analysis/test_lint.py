"""Linter tests: every planted fixture violation is caught with the
right rule ID, file and line; sanctioned code yields zero findings."""

from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_paths, zone_of
from repro.analysis.lint import BOUNDARY_ZONE, EXACT_ZONE, GENERAL_ZONE

FIXTURES = Path(__file__).parent / "fixtures"

PLANTED = [
    ("smt/sia001_float_literal.py", "SIA001", 3),
    ("smt/sia002_float_cast.py", "SIA002", 5),
    ("smt/sia003_float_equality.py", "SIA003", 5),
    ("smt/sia004_eval.py", "SIA004", 5),
    ("smt/sia005_bare_except.py", "SIA005", 7),
    ("smt/sia006_frozen_mutation.py", "SIA006", 5),
    ("smt/sia007_missing_slots.py", "SIA007", 8),
    ("smt/sia008_model_unchecked.py", "SIA008", 6),
    ("core/sia009_direct_solver.py", "SIA009", 5),
    ("core/sia010_direct_time.py", "SIA010", 6),
    ("core/sia010_aliased_import.py", "SIA010", 7),
    ("core/sia010_datetime_now.py", "SIA010", 7),
]


@pytest.mark.parametrize("filename,rule,line", PLANTED)
def test_planted_violation_is_caught(filename, rule, line):
    findings = lint_file(FIXTURES / filename)
    assert findings, f"{filename}: expected a finding"
    matching = [f for f in findings if f.rule == rule]
    assert matching, f"{filename}: no {rule} among {findings}"
    finding = matching[0]
    assert finding.line == line
    assert finding.file.endswith(filename)


@pytest.mark.parametrize("filename,rule,line", PLANTED)
def test_planted_violation_is_the_only_finding(filename, rule, line):
    findings = lint_file(FIXTURES / filename)
    assert {f.rule for f in findings} == {rule}


def test_clean_fixture_has_zero_findings():
    assert lint_file(FIXTURES / "smt" / "clean.py") == []


def test_pragmas_suppress_sanctioned_lines():
    assert lint_file(FIXTURES / "smt" / "pragma_sanctioned.py") == []


def test_pragmas_can_be_ignored_for_auditing():
    findings = lint_file(
        FIXTURES / "smt" / "pragma_sanctioned.py", honor_pragmas=False
    )
    assert {f.rule for f in findings} == {"SIA001", "SIA002", "SIA006"}


def test_sia010_exempts_the_obs_clock_module():
    from repro.analysis.lint import lint_source

    source = "import time\n\n\ndef now():\n    return time.perf_counter()\n"
    assert lint_source(source, Path("src/repro/obs/clock.py")) == []
    flagged = lint_source(source, Path("src/repro/core/clock.py"))
    assert {f.rule for f in flagged} == {"SIA010"}


def test_sia010_holds_the_rest_of_obs_to_the_rule():
    # The exemption is clock.py only: telemetry modules in obs/ must
    # route through repro.obs.now() like everyone else.
    from repro.analysis.lint import lint_source

    source = "import time\n\n\ndef now():\n    return time.perf_counter()\n"
    for name in ("heartbeat.py", "ledger.py", "export.py", "top.py"):
        flagged = lint_source(source, Path(f"src/repro/obs/{name}"))
        assert {f.rule for f in flagged} == {"SIA010"}, name


def test_sia010_time_sleep_is_not_a_clock_read():
    # sleep() consumes time, it does not *read* the clock; the live
    # `repro top` repaint loop depends on this being legal anywhere.
    from repro.analysis.lint import lint_source

    source = "import time\n\ntime.sleep(0.5)\n"
    assert lint_source(source, Path("src/repro/obs/top.py")) == []
    assert lint_source(source, Path("src/repro/bench/x.py")) == []


def test_sia010_covers_aliased_time_module():
    from repro.analysis.lint import lint_source

    source = "import time as _time\n\nt = _time.monotonic()\n"
    flagged = lint_source(source, Path("src/repro/bench/x.py"))
    assert {f.rule for f in flagged} == {"SIA010"}


def test_sia010_covers_from_imports_and_aliases():
    from repro.analysis.lint import lint_source

    source = (
        "from time import perf_counter\n"
        "from time import monotonic as mono\n"
        "\n"
        "a = perf_counter()\n"
        "b = mono()\n"
    )
    flagged = lint_source(source, Path("src/repro/bench/x.py"))
    assert [f.rule for f in flagged] == ["SIA010", "SIA010"]
    assert [f.line for f in flagged] == [4, 5]


def test_sia010_covers_datetime_family():
    from repro.analysis.lint import lint_source

    source = (
        "import datetime as dtmod\n"
        "from datetime import datetime, date\n"
        "\n"
        "a = dtmod.datetime.now()\n"
        "b = datetime.utcnow()\n"
        "c = date.today()\n"
    )
    flagged = lint_source(source, Path("src/repro/bench/x.py"))
    assert [f.rule for f in flagged] == ["SIA010"] * 3
    assert [f.line for f in flagged] == [4, 5, 6]


def test_sia010_ignores_unrelated_names():
    from repro.analysis.lint import lint_source

    source = (
        "from statistics import mean\n"
        "import datetime\n"
        "\n"
        "a = mean([1, 2])\n"
        "b = datetime.timedelta(seconds=3)\n"
        "c = datetime.datetime(2024, 1, 1)\n"
    )
    assert lint_source(source, Path("src/repro/bench/x.py")) == []


def test_lint_paths_walks_directories():
    findings, files = lint_paths([FIXTURES])
    assert files == len(list(FIXTURES.rglob("*.py")))
    rules = {f.rule for f in findings}
    assert {rule for _, rule, _ in PLANTED} <= rules


def test_overlapping_paths_are_examined_once():
    from repro.analysis.lint import iter_python_files

    once = iter_python_files([FIXTURES])
    overlapped = iter_python_files(
        [FIXTURES, FIXTURES / "smt", Path(str(FIXTURES)) / "." / "core"]
    )
    assert len(overlapped) == len(once)
    findings_once, files_once = lint_paths([FIXTURES])
    findings_twice, files_twice = lint_paths([FIXTURES, FIXTURES / "smt"])
    assert files_twice == files_once
    assert findings_twice == findings_once


def test_zone_classification():
    assert zone_of(Path("src/repro/smt/solver.py")) == EXACT_ZONE
    assert zone_of(Path("src/repro/predicates/expr.py")) == EXACT_ZONE
    assert zone_of(Path("src/repro/learn/svm.py")) == BOUNDARY_ZONE
    assert zone_of(Path("src/repro/engine/executor.py")) == GENERAL_ZONE


def test_float_literals_fine_outside_exact_zone(tmp_path):
    path = tmp_path / "engine" / "stats.py"
    path.parent.mkdir()
    path.write_text("RATE = 0.5\n")
    assert lint_file(path) == []


def test_float_cast_flagged_in_boundary_zone(tmp_path):
    path = tmp_path / "learn" / "model.py"
    path.parent.mkdir()
    path.write_text("def f(x):\n    return float(x)\n")
    findings = lint_file(path)
    assert [f.rule for f in findings] == ["SIA002"]


def test_sia009_only_fires_in_core_zone(tmp_path):
    source = "def f(x):\n    s = Solver()\n    s.add(x)\n    return s.check()\n"
    core = tmp_path / "core" / "probe.py"
    core.parent.mkdir()
    core.write_text(source)
    assert [f.rule for f in lint_file(core)] == ["SIA009"]
    smt = tmp_path / "smt" / "probe.py"
    smt.parent.mkdir()
    smt.write_text(source)
    assert lint_file(smt) == []


def test_sia009_pragma_escape(tmp_path):
    path = tmp_path / "core" / "probe.py"
    path.parent.mkdir()
    path.write_text(
        "def f(x):\n"
        "    s = Solver()  # sia: allow(SIA009)\n"
        "    s.add(x)\n"
        "    return s.check()\n"
    )
    assert lint_file(path) == []


def test_sanctioned_constructor_mutation_not_flagged(tmp_path):
    path = tmp_path / "smt" / "node.py"
    path.parent.mkdir()
    path.write_text(
        "class Node:\n"
        "    __slots__ = ('x',)\n"
        "    def __init__(self, x):\n"
        "        object.__setattr__(self, 'x', x)\n"
    )
    assert lint_file(path) == []
