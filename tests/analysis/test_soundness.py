"""Null-soundness pass: every registered rewrite rule verifies through
the repo's own solver, and planted unsound rules are rejected."""

from repro.analysis import check_registry, check_rule
from repro.predicates import Col, Column, Comparison, Lit, TRUE_PRED, por
from repro.predicates.expr import INTEGER
from repro.rewrite.rules import REWRITE_RULES, RewriteRule

X = Col(Column("t", "x", INTEGER))
Y = Col(Column("t", "y", INTEGER))


def _rules_of(findings):
    return {f.rule for f in findings}


def test_every_registered_rule_is_null_sound():
    report = check_registry()
    assert report.rules_checked == len(REWRITE_RULES)
    assert report.findings == []


def test_registry_counts_obligations():
    report = check_registry()
    expected = sum(2 if rule.equivalence else 1 for rule in REWRITE_RULES)
    assert report.obligations_discharged == expected


def test_unsound_forward_direction_is_caught():
    # TRUE does not imply x < 5: a tuple with x = 7 is a witness.
    bogus = RewriteRule(
        name="bogus-strengthen",
        lhs=TRUE_PRED,
        rhs=Comparison(X, "<", Lit.integer(5)),
        equivalence=False,
    )
    assert "SIA201" in _rules_of(check_rule(bogus))


def test_3vl_trap_equivalence_is_caught():
    # x = x <=> TRUE holds in two-valued logic but NOT in SQL: when x
    # is NULL the lhs evaluates to NULL and filters the tuple out.
    trap = RewriteRule(
        name="reflexive-as-equivalence",
        lhs=Comparison(X, "=", X),
        rhs=TRUE_PRED,
        equivalence=True,
    )
    findings = check_rule(trap)
    assert "SIA202" in _rules_of(findings)
    # The forward (weakening) direction is still fine.
    assert "SIA201" not in _rules_of(findings)


def test_excluded_middle_equivalence_is_caught():
    trap = RewriteRule(
        name="excluded-middle-as-equivalence",
        lhs=por(
            [Comparison(X, "<", Lit.integer(5)), Comparison(X, ">=", Lit.integer(5))]
        ),
        rhs=TRUE_PRED,
        equivalence=True,
    )
    assert _rules_of(check_rule(trap)) == {"SIA202"}


def test_cross_column_unsoundness_is_caught():
    # x < 5 says nothing about y.
    bogus = RewriteRule(
        name="bogus-cross-column",
        lhs=Comparison(X, "<", Lit.integer(5)),
        rhs=Comparison(Y, "<", Lit.integer(5)),
        equivalence=False,
    )
    assert "SIA201" in _rules_of(check_rule(bogus))


def test_sound_rule_has_no_findings():
    ok = RewriteRule(
        name="local-tighten",
        lhs=Comparison(X, "<", Lit.integer(3)) & Comparison(X, "<", Lit.integer(9)),
        rhs=Comparison(X, "<", Lit.integer(3)),
    )
    assert check_rule(ok) == []
