"""Certificate-auditor tests: real proofs audit clean, planted
corruptions are caught, and the auditor stays independent of solver
code (it may import only ``repro.smt.terms`` plus findings/stdlib)."""

import ast
import dataclasses
from fractions import Fraction
from pathlib import Path

from repro.analysis import audit_proof, certify_registry
from repro.smt import (
    EQ,
    REAL,
    SAT,
    UNSAT,
    Atom,
    BVar,
    FarkasCert,
    LinExpr,
    Not,
    Solver,
    SplitCert,
    Var,
    compare,
    conj,
    disj,
)

X = Var("x")
Y = Var("y")
R = Var("r", REAL)
ex, ey, er = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(R)
c = LinExpr.const_expr


def solved_log(formula, expected, assumptions=None, **kwargs):
    solver = Solver(proof=True, **kwargs)
    solver.add(formula)
    assert solver.check(assumptions=assumptions) == expected
    assert solver.proof_log is not None
    return solver.proof_log


LRA_CONFLICT = conj([compare(er, "<", c(0)), compare(er, ">", c(0))])

BRANCHING = conj(
    [
        compare(er, "=", ex),
        compare(er, ">=", c(Fraction(3, 10))),
        compare(er, "<=", c(Fraction(7, 10))),
    ]
)


# ----------------------------------------------------------------------
# Genuine proofs audit clean
# ----------------------------------------------------------------------
def test_lra_farkas_proof_audits_clean():
    assert audit_proof(solved_log(LRA_CONFLICT, UNSAT)) == []


def test_branch_and_bound_split_proof_audits_clean():
    log = solved_log(BRANCHING, UNSAT)
    assert any(isinstance(s.cert, SplitCert) for s in log.theory_steps())
    assert audit_proof(log) == []


def test_integer_divisibility_proof_audits_clean():
    log = solved_log(compare(ey * 2, "=", c(1)), UNSAT)
    assert audit_proof(log) == []


def test_trichotomy_proof_audits_clean():
    formula = conj([compare(ey, ">=", c(0)), compare(ey, "<=", c(0))])
    log = solved_log(formula, UNSAT, assumptions=[Not(Atom(ey, EQ))])
    assert any(s.kind == "trichotomy" for s in log.steps)
    assert audit_proof(log) == []


def test_propositional_proof_audits_clean():
    a = BVar("a")
    assert audit_proof(solved_log(conj([a, Not(a)]), UNSAT)) == []


def test_sat_log_audits_clean():
    formula = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(5))])
    assert audit_proof(solved_log(formula, SAT)) == []


def test_minimized_core_proof_audits_clean():
    formula = conj(
        [
            disj([compare(ey, "<=", c(50)), compare(ey, ">=", c(60))]),
            BRANCHING,
        ]
    )
    log = solved_log(formula, UNSAT, minimize_cores=True)
    assert audit_proof(log) == []


# ----------------------------------------------------------------------
# Planted corruptions are caught
# ----------------------------------------------------------------------
def corrupt(log, index, **changes):
    log.steps[index] = dataclasses.replace(log.steps[index], **changes)
    return log


def find_step(log, predicate):
    for step in log.steps:
        if predicate(step):
            return step
    raise AssertionError("no matching step in proof log")


def rules_of(findings):
    return {f.rule for f in findings}


def test_negated_farkas_coefficient_triggers_sia302():
    log = solved_log(LRA_CONFLICT, UNSAT)
    step = find_step(log, lambda s: isinstance(s.cert, FarkasCert))
    entries = list(step.cert.entries)
    entries[0] = dataclasses.replace(entries[0], coeff=-entries[0].coeff)
    corrupt(log, step.index, cert=FarkasCert(entries=tuple(entries)))
    assert "SIA302" in rules_of(audit_proof(log))


def test_wrong_farkas_constraint_triggers_sia302():
    log = solved_log(LRA_CONFLICT, UNSAT)
    step = find_step(log, lambda s: isinstance(s.cert, FarkasCert))
    entries = list(step.cert.entries)
    entries[0] = dataclasses.replace(
        entries[0], orig_expr=entries[0].orig_expr + 1, used_expr=entries[0].used_expr + 1
    )
    corrupt(log, step.index, cert=FarkasCert(entries=tuple(entries)))
    assert "SIA302" in rules_of(audit_proof(log))


def test_bogus_learned_step_triggers_sia301():
    log = solved_log(LRA_CONFLICT, UNSAT)
    step = find_step(log, lambda s: not s.lits)
    corrupt(log, step.index, lits=(99,), kind="learned")
    assert "SIA301" in rules_of(audit_proof(log))


def test_missing_refutation_triggers_sia301():
    log = solved_log(LRA_CONFLICT, UNSAT)
    log.steps = [s for s in log.steps if s.lits]
    assert "SIA301" in rules_of(audit_proof(log))


def test_unknown_step_kind_triggers_sia301():
    log = solved_log(LRA_CONFLICT, UNSAT)
    corrupt(log, 0, kind="mystery")
    assert "SIA301" in rules_of(audit_proof(log))


def test_stripped_theory_cert_triggers_sia303():
    log = solved_log(LRA_CONFLICT, UNSAT)
    step = find_step(log, lambda s: s.kind == "theory")
    corrupt(log, step.index, cert=None)
    assert "SIA303" in rules_of(audit_proof(log))


def test_budget_block_under_unsat_triggers_sia303():
    log = solved_log(LRA_CONFLICT, UNSAT)
    step = find_step(log, lambda s: s.kind == "theory")
    corrupt(log, step.index, kind="budget-block", cert=None)
    assert "SIA303" in rules_of(audit_proof(log))


def test_budget_block_under_sat_is_fine():
    formula = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(5))])
    log = solved_log(formula, SAT)
    step = find_step(log, lambda s: s.kind == "input")
    corrupt(log, step.index, kind="budget-block", cert=None)
    assert audit_proof(log) == []


def test_findings_carry_origin_and_step_line():
    log = solved_log(LRA_CONFLICT, UNSAT)
    step = find_step(log, lambda s: s.kind == "theory")
    corrupt(log, step.index, cert=None)
    findings = audit_proof(log, origin="unit-test")
    assert findings
    assert all(f.file == "unit-test" for f in findings)
    assert any(f.line == step.index for f in findings)


# ----------------------------------------------------------------------
# Registry-wide certification (the --certify corpus gate)
# ----------------------------------------------------------------------
def test_certify_registry_is_clean():
    findings, audited = certify_registry()
    assert findings == []
    assert audited >= 13


# ----------------------------------------------------------------------
# Independence: the auditor must not import solver code
# ----------------------------------------------------------------------
ALLOWED_STDLIB = {"__future__", "math", "fractions", "typing", "dataclasses"}


def test_auditor_imports_no_solver_modules():
    import repro.analysis.certify as certify_module

    source = Path(certify_module.__file__).read_text()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                assert alias.name.split(".")[0] in ALLOWED_STDLIB, alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0:
                assert module.split(".")[0] in ALLOWED_STDLIB, module
            elif node.level == 1:
                assert module == "findings", module
            else:
                # Relative reach into the solver package: only the pure
                # value types of smt.terms are allowed.
                assert node.level == 2 and module == "smt.terms", module
