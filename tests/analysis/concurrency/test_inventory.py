"""Shared-state inventory over the concurrency fixture package."""

from pathlib import Path

import pytest

from repro.analysis.concurrency.inventory import (
    SHARED_ZONE,
    WORKER_LOCAL_ZONE,
    collect_inventory,
    concurrency_zone_of,
    dispatch_sites,
)
from repro.analysis.flow.callgraph import Project
from repro.analysis.lint import iter_python_files

FIXTURES = Path(__file__).parents[1] / "fixtures" / "concurrency"


@pytest.fixture(scope="module")
def project():
    return Project.load(iter_python_files([FIXTURES]))


@pytest.fixture(scope="module")
def inventory(project):
    return collect_inventory(project)


def _entry(inventory, suffix):
    hits = [e for e in inventory.entries() if e.qualname.endswith(suffix)]
    assert len(hits) == 1, f"{suffix}: {[e.qualname for e in hits]}"
    return hits[0]


def test_zone_classification():
    assert concurrency_zone_of(Path("src/repro/smt/solver.py")) == (
        WORKER_LOCAL_ZONE
    )
    assert concurrency_zone_of(Path("src/repro/predicates/expr.py")) == (
        WORKER_LOCAL_ZONE
    )
    assert concurrency_zone_of(Path("src/repro/bench/harness.py")) == (
        WORKER_LOCAL_ZONE
    )
    assert concurrency_zone_of(Path("src/repro/bench/parallel.py")) == (
        SHARED_ZONE
    )
    assert concurrency_zone_of(Path("src/repro/obs/metrics.py")) == (
        SHARED_ZONE
    )


def test_container_bindings_inventoried(inventory):
    registry = _entry(inventory, "state.REGISTRY")
    assert registry.kind == "container"
    assert registry.zone == SHARED_ZONE
    events = _entry(inventory, "state.EVENTS")
    assert events.kind == "container"


def test_worker_local_zone_from_path(inventory):
    intern = _entry(inventory, "smt.core.INTERN")
    assert intern.zone == WORKER_LOCAL_ZONE


def test_delta_capable_singleton(inventory):
    box = _entry(inventory, "state.GLOBAL_BOX")
    assert box.kind == "instance"
    assert box.delta_capable
    assert any(
        cls == "CounterBox" for (_mod, cls) in inventory.delta_classes
    )


def test_plain_singleton_not_delta_capable(inventory):
    store = _entry(inventory, "rmw.STORE")
    assert store.kind == "instance"
    assert not store.delta_capable
    assert any(
        cls == "ItemStore" and store.qualname in instances
        for (_mod, cls), instances in inventory.singleton_classes.items()
    )


def test_module_lock_registered(inventory):
    assert any(
        "LOCK" in names for names in inventory.module_locks.values()
    )


def test_imported_registry_resolves_to_definer(project, inventory):
    workers = next(
        m for key, m in project.modules.items()
        if key.endswith("pkg.workers")
    )
    import ast

    name = ast.parse("REGISTRY").body[0].value
    entry = inventory.lookup(workers, "REGISTRY")
    assert entry is not None
    assert entry.module.endswith("pkg.state")
    assert inventory.resolve(workers, name) is entry


def test_dispatch_sites_found(project):
    workers = next(
        m for key, m in project.modules.items()
        if key.endswith("pkg.workers")
    )
    run = workers.functions["run"]
    sites = dispatch_sites(run)
    assert len(sites) == 2
    assert all(site.boundary == "executor" for site in sites)
