"""Per-rule behavior of the SIA501-504 passes over the fixtures."""

from pathlib import Path

import pytest

from repro.analysis.concurrency import concurrency_paths

FIXTURES = Path(__file__).parents[1] / "fixtures" / "concurrency"


@pytest.fixture(scope="module")
def findings():
    found, files = concurrency_paths([FIXTURES])
    assert files == 10
    return found


def _by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def test_sia501_worker_reachable_writes(findings):
    hits = _by_rule(findings, "SIA501")
    assert len(hits) == 2
    assert all(f.file.endswith("workers.py") for f in hits)
    assert {f.line for f in hits} == {17, 23}
    # The message names the worker entry the write is reachable from.
    assert all("entry:" in f.message for f in hits)


def test_sia501_exemptions(findings):
    # Lock-guarded writes, the worker-local intern table and the
    # delta-capable registry never show up.
    assert not any(
        "guarded_worker" in f.message or "INTERN" in f.message
        or "GLOBAL_BOX" in f.message
        for f in _by_rule(findings, "SIA501")
    )


def test_sia502_fork_hazards(findings):
    hits = _by_rule(findings, "SIA502")
    assert len(hits) == 6
    assert all(f.file.endswith("forks.py") for f in hits)
    messages = " | ".join(f.message for f in hits)
    assert messages.count("without an explicit mp_context") == 2
    assert "while a process pool is live" in messages
    assert "a lambda" in messages
    assert "nested function local()" in messages
    assert "copied, not shared" in messages


def test_sia502_spawn_pool_is_clean(findings):
    # workers.run constructs its pool with an explicit spawn context.
    assert not any(
        f.file.endswith("workers.py")
        for f in _by_rule(findings, "SIA502")
    )


def test_sia503_lock_discipline(findings):
    hits = _by_rule(findings, "SIA503")
    assert len(hits) == 4
    assert all(f.file.endswith("rmw.py") for f in hits)
    messages = [f.message for f in hits]
    assert sum("read-modify-write" in m for m in messages) == 2
    assert sum("check-then-insert" in m for m in messages) == 2
    # Singleton instance tables are charged to the class's table.
    assert sum("ItemStore._items" in m for m in messages) == 2


def test_sia503_locked_paths_clean(findings):
    assert not any(
        f.line > 42 for f in _by_rule(findings, "SIA503")
    ), "locked_tally must not be reported"


def test_sia504_protocol_bypass(findings):
    hits = [
        f for f in _by_rule(findings, "SIA504")
        if f.file.endswith("merge.py")
    ]
    assert len(hits) == 2
    assert {("read" in f.message, "write" in f.message) for f in hits} == {
        (True, False),
        (False, True),
    }


def test_sia504_protocol_methods_clean(findings):
    # batch() uses snapshot()/delta_since() -- lines 16-17 stay clean.
    assert not any(
        f.line < 20 and f.file.endswith("merge.py")
        for f in _by_rule(findings, "SIA504")
    )


def test_channel_posts_are_not_sia501(findings):
    # beat() writes channel-capable state on a worker-reachable path;
    # the single-producer post/drain protocol sanctions it.
    assert not any(
        f.file.endswith("channel.py")
        for f in _by_rule(findings, "SIA501")
    )


def test_channel_raw_poke_is_sia504(findings):
    hits = [
        f for f in _by_rule(findings, "SIA504")
        if f.file.endswith("channel.py")
    ]
    assert len(hits) == 1
    assert "channel-capable state" in hits[0].message
    assert "CHANNEL.latest" in hits[0].message
    assert "post()/drain()" in hits[0].message


def test_channel_accessors_clean(findings):
    # CHANNEL.post(...) in the worker and CHANNEL.drain() in the
    # aggregator are the protocol; neither line is reported.
    assert not any(
        f.file.endswith("channel.py") and "latest" not in f.message
        for f in findings
    )


def test_pragma_suppression():
    suppressed, _ = concurrency_paths([FIXTURES])
    raw, _ = concurrency_paths([FIXTURES], honor_pragmas=False)
    extra = [f for f in raw if f not in suppressed]
    assert len(extra) == 1
    assert extra[0].rule == "SIA503"
    assert extra[0].file.endswith("clean.py")


def test_all_findings_carry_concurrency_pass(findings):
    assert findings
    assert all(f.pass_name == "concurrency" for f in findings)
