"""CLI and runner contract of ``repro analyze --concurrency``."""

import json
from pathlib import Path

from repro.analysis import RULE_CATALOG, run_analysis
from repro.cli import main

ROOT = Path(__file__).resolve().parents[3]
FIXTURES = Path(__file__).parents[1] / "fixtures" / "concurrency"


def test_concurrency_flag_detects_planted_violations(capsys):
    code = main(
        ["analyze", "--concurrency", "--skip-domain", str(FIXTURES)]
    )
    out = capsys.readouterr().out
    assert code == 1
    for rule in ("SIA501", "SIA502", "SIA503", "SIA504"):
        assert rule in out, rule


def test_concurrency_json_report(capsys):
    code = main(
        [
            "analyze",
            "--concurrency",
            "--skip-domain",
            "--json",
            str(FIXTURES),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    by_rule = payload["summary"]["by_rule"]
    assert by_rule.get("SIA501", 0) == 2
    assert by_rule.get("SIA502", 0) == 6
    assert by_rule.get("SIA503", 0) == 4
    assert by_rule.get("SIA504", 0) == 3
    assert payload["summary"]["files_concurrency"] > 0
    conc = [f for f in payload["findings"] if f["rule"].startswith("SIA5")]
    assert all(f["pass"] == "concurrency" for f in conc)
    assert all(f["hint"] for f in conc)


def test_concurrency_over_src_is_clean(capsys):
    # Acceptance criterion: the shipped tree has zero concurrency
    # findings (MetricsRegistry carries a lock, the parallel driver
    # pins spawn, aggregation rides the snapshot/delta protocol).
    code = main(
        ["analyze", "--concurrency", "--skip-domain", str(ROOT / "src")]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "concurrency-analyzed" in out


def test_concurrency_off_by_default():
    report = run_analysis([str(FIXTURES)], domain=False)
    assert not any(f.rule.startswith("SIA5") for f in report.findings)
    assert report.files_concurrency == 0


def test_rules_registered_in_catalog():
    for rule in ("SIA501", "SIA502", "SIA503", "SIA504"):
        info = RULE_CATALOG[rule]
        assert info.title
        assert info.hint
