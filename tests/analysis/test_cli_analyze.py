"""CLI contract of ``repro analyze``: exit codes and --json output."""

import json
from pathlib import Path

from repro.cli import main

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "smt"


def test_analyze_src_is_clean(capsys):
    # The headline acceptance criterion: the shipped tree has zero
    # findings and every rewrite rule re-verifies through the solver.
    code = main(["analyze", str(ROOT / "src")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out
    assert "rewrite rule" in out


def test_analyze_fixtures_exit_code_one(capsys):
    code = main(["analyze", "--skip-domain", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    assert "SIA001" in out


def test_analyze_json_output(capsys):
    code = main(["analyze", "--skip-domain", "--json", str(FIXTURES)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["clean"] is False
    assert payload["summary"]["findings"] == len(payload["findings"])
    by_rule = payload["summary"]["by_rule"]
    for rule in ("SIA001", "SIA002", "SIA003", "SIA004", "SIA005", "SIA006", "SIA007"):
        assert by_rule.get(rule, 0) >= 1, rule
    sample = payload["findings"][0]
    assert set(sample) == {
        "rule", "title", "file", "line", "col", "message", "hint", "pass",
    }


def test_analyze_fix_hints(capsys):
    code = main(["analyze", "--skip-domain", "--fix-hints", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    assert "hint:" in out


def test_analyze_bad_path_is_internal_error(capsys):
    code = main(["analyze", str(ROOT / "no" / "such" / "dir")])
    err = capsys.readouterr().err
    assert code == 2
    assert "error" in err


def test_analyze_unparsable_file_is_internal_error(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def (:\n")
    code = main(["analyze", "--skip-domain", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "internal error" in err
