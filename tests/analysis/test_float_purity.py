"""Exact-arithmetic purity audit (the known-crossings satellite).

Two guarantees:

1. With pragmas honored, the exact zone (``repro/smt/`` +
   ``repro/predicates/``) and the learn boundary produce **zero** float
   findings -- i.e. every crossing that exists is explicitly sanctioned
   in source.
2. With pragmas *ignored*, the set of files containing crossings is
   exactly the documented whitelist -- so a new float literal or cast
   anywhere else in the exact zone fails this test even if someone
   slaps a pragma on it without updating the whitelist here.
"""

from pathlib import Path

from repro.analysis import lint_paths

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src" / "repro"

FLOAT_RULES = {"SIA001", "SIA002", "SIA003"}

# The documented float sites, by file.  repro/smt/sat.py holds the
# VSIDS activity heuristic (floats never reach theory arithmetic);
# repro/predicates/eval.py is the vectorised engine-evaluation
# boundary; the two learn/ files are the paper's float->Fraction
# crossing (DESIGN.md substitution table); repro/smt/backend.py snaps
# float tableau candidates onto exact bounds (the two-tier
# orchestrator's single comparison boundary).  repro/smt/floatsimplex.py
# is deliberately absent: it is the float-tier *zone*, not a crossing
# -- the purity rules do not apply inside it at all (tested below).
SANCTIONED_FILES = {
    "src/repro/smt/sat.py",
    "src/repro/smt/backend.py",
    "src/repro/predicates/eval.py",
    "src/repro/learn/svm.py",
    "src/repro/learn/rationalize.py",
}


def _float_findings(paths, *, honor_pragmas):
    findings, _ = lint_paths(paths, honor_pragmas=honor_pragmas)
    return [f for f in findings if f.rule in FLOAT_RULES]


def test_no_unsanctioned_crossing_in_exact_zone():
    findings = _float_findings(
        [SRC / "smt", SRC / "predicates"], honor_pragmas=True
    )
    assert findings == [], [f.render() for f in findings]


def test_learn_boundary_crossings_are_all_sanctioned():
    findings = _float_findings([SRC / "learn"], honor_pragmas=True)
    assert findings == [], [f.render() for f in findings]


def test_crossings_exist_only_in_documented_files():
    findings = _float_findings(
        [SRC / "smt", SRC / "predicates", SRC / "learn"], honor_pragmas=False
    )
    observed = {str(Path(f.file).relative_to(ROOT)) for f in findings}
    assert observed == SANCTIONED_FILES


def test_float_tier_zone_is_exempt_even_without_pragmas():
    """floatsimplex.py is a zone carve-out, not a pragma'd exception.

    Its float cells produce zero findings even with pragmas ignored --
    if the carve-out in ``zone_of`` ever regresses, the file's hundreds
    of float operations would land in ``observed`` above and both this
    test and the whitelist test would fail.
    """
    findings = _float_findings(
        [SRC / "smt" / "floatsimplex.py"], honor_pragmas=False
    )
    assert findings == [], [f.render() for f in findings]


def test_certify_is_exact_zone_despite_living_under_analysis():
    """The certificate auditor is promoted into the exact zone."""
    from repro.analysis.lint import EXACT_ZONE, lint_source, zone_of

    path = SRC / "analysis" / "certify.py"
    assert zone_of(path) == EXACT_ZONE
    findings = lint_source("x = 0.5\n", path, honor_pragmas=False)
    assert [f.rule for f in findings] == ["SIA001"]


def test_the_two_learn_crossings_are_where_documented():
    findings = _float_findings([SRC / "learn"], honor_pragmas=False)
    casts = sorted(
        (Path(f.file).name, f.rule) for f in findings if f.rule == "SIA002"
    )
    assert casts == [("rationalize.py", "SIA002"), ("svm.py", "SIA002")]
