"""CLI and runner contract of ``repro analyze --flow``."""

import json
from pathlib import Path

from repro.analysis import run_analysis
from repro.cli import main

ROOT = Path(__file__).resolve().parents[3]
FLOW_FIXTURES = Path(__file__).parents[1] / "fixtures" / "flow"


def test_flow_flag_detects_planted_violations(capsys):
    code = main(
        ["analyze", "--flow", "--skip-domain", str(FLOW_FIXTURES)]
    )
    out = capsys.readouterr().out
    assert code == 1
    for rule in ("SIA401", "SIA402", "SIA403"):
        assert rule in out, rule


def test_flow_json_report(capsys):
    code = main(
        [
            "analyze",
            "--flow",
            "--skip-domain",
            "--json",
            str(FLOW_FIXTURES),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    by_rule = payload["summary"]["by_rule"]
    assert by_rule.get("SIA401", 0) == 1
    assert by_rule.get("SIA402", 0) == 3
    assert by_rule.get("SIA403", 0) == 2
    assert payload["summary"]["files_flowed"] > 0
    flow_findings = [
        f for f in payload["findings"] if f["rule"].startswith("SIA4")
    ]
    assert all(f["pass"] == "flow" for f in flow_findings)
    assert all(f["hint"] for f in flow_findings)


def test_flow_over_src_is_clean(capsys):
    # Acceptance criterion: the shipped tree has zero flow findings.
    code = main(
        ["analyze", "--flow", "--skip-domain", str(ROOT / "src")]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "flow-analyzed" in out


def test_runner_dedupes_overlapping_paths():
    once = run_analysis(
        [str(FLOW_FIXTURES)], flow=True, domain=False
    )
    twice = run_analysis(
        [str(FLOW_FIXTURES), str(FLOW_FIXTURES / "pkg")],
        flow=True,
        domain=False,
    )
    assert [f for f in twice.findings if f.rule.startswith("SIA4")] == [
        f for f in once.findings if f.rule.startswith("SIA4")
    ]
    assert twice.files_flowed == once.files_flowed


def test_flow_off_by_default():
    report = run_analysis([str(FLOW_FIXTURES)], domain=False)
    assert not any(f.rule.startswith("SIA4") for f in report.findings)
    assert report.files_flowed == 0
