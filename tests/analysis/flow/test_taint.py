"""SIA401: interprocedural float taint into exact-zone calls."""

from pathlib import Path

from repro.analysis.flow.callgraph import Project
from repro.analysis.flow.taint import analyze_taint

FIXTURES = Path(__file__).parents[1] / "fixtures" / "flow"


def _project_from(sources: dict[str, str]) -> Project:
    project = Project()
    for rel, src in sources.items():
        project.add_source(src, Path(rel))
    for module in project.modules.values():
        project._bind_imports(module)
    return project


SINK = (
    "def assert_bound(session, value):\n"
    "    return session.check(value)\n"
)


def test_laundered_float_is_caught_cross_module():
    project = _project_from(
        {
            "pkg/smt/engine.py": SINK,
            "pkg/core/use.py": (
                "from ..smt.engine import assert_bound\n"
                "def launder(x):\n"
                "    return x * 0.5\n"
                "def drive(session, q):\n"
                "    v = launder(q)\n"
                "    return assert_bound(session, v)\n"
            ),
        }
    )
    findings = analyze_taint(project)
    assert [f.rule for f in findings] == ["SIA401"]
    assert findings[0].line == 6


def test_sanitized_value_is_clean():
    project = _project_from(
        {
            "pkg/smt/engine.py": SINK,
            "pkg/core/use.py": (
                "from fractions import Fraction\n"
                "from ..smt.engine import assert_bound\n"
                "def drive(session, q):\n"
                "    v = Fraction(q * 0.5).limit_denominator()\n"
                "    return assert_bound(session, v)\n"
            ),
        }
    )
    assert analyze_taint(project) == []


def test_float_through_branches_and_containers():
    project = _project_from(
        {
            "pkg/smt/engine.py": SINK,
            "pkg/core/use.py": (
                "from ..smt.engine import assert_bound\n"
                "def drive(session, q, c):\n"
                "    v = 0.5 if c else q\n"
                "    vs = [v]\n"
                "    return assert_bound(session, vs[0])\n"
            ),
        }
    )
    findings = analyze_taint(project)
    assert [f.rule for f in findings] == ["SIA401"]


def test_intra_module_calls_are_left_to_the_linter():
    # Same-module flow into an exact-zone function is SIA001-003
    # territory; the interprocedural pass must not double-report it.
    project = _project_from(
        {
            "pkg/smt/engine.py": (
                SINK
                + "def local(session):\n"
                + "    return assert_bound(session, 1)\n"
            ),
        }
    )
    assert analyze_taint(project) == []


def test_math_module_results_are_float_sources():
    project = _project_from(
        {
            "pkg/smt/engine.py": SINK,
            "pkg/core/use.py": (
                "import math\n"
                "from ..smt.engine import assert_bound\n"
                "def drive(session, q):\n"
                "    v = math.sqrt(q)\n"
                "    return assert_bound(session, v)\n"
            ),
        }
    )
    assert [f.rule for f in analyze_taint(project)] == ["SIA401"]


def test_float_into_certify_is_a_sink():
    # certify.py is promoted into the exact zone even though it lives
    # under analysis/: float flowing into its functions is SIA401.
    project = _project_from(
        {
            "pkg/analysis/certify.py": SINK,
            "pkg/core/use.py": (
                "from ..analysis.certify import assert_bound\n"
                "def drive(session, q):\n"
                "    v = q * 0.5\n"
                "    return assert_bound(session, v)\n"
            ),
        }
    )
    assert [f.rule for f in analyze_taint(project)] == ["SIA401"]


def test_float_into_float_tier_zone_is_not_a_sink():
    # floatsimplex.py is the sanctioned float tier: calls into it are
    # *supposed* to carry floats, so they are not taint sinks.
    project = _project_from(
        {
            "pkg/smt/floatsimplex.py": SINK,
            "pkg/core/use.py": (
                "from ..smt.floatsimplex import assert_bound\n"
                "def drive(session, q):\n"
                "    v = q * 0.5\n"
                "    return assert_bound(session, v)\n"
            ),
        }
    )
    assert analyze_taint(project) == []


def test_fixture_package_end_to_end():
    from repro.analysis.flow import flow_paths

    findings, _ = flow_paths([FIXTURES])
    taint = [f for f in findings if f.rule == "SIA401"]
    assert len(taint) == 1
    assert taint[0].file.endswith("sia401_taint.py")
    assert taint[0].line == 18
