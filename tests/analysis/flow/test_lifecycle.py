"""SIA403: must-close / must-retract along normal and exceptional paths."""

from pathlib import Path

from repro.analysis.flow.callgraph import Project
from repro.analysis.flow.lifecycle import analyze_lifecycle

FIXTURES = Path(__file__).parents[1] / "fixtures" / "flow"


def _analyze(src: str):
    project = Project()
    project.add_source(src, Path("pkg/core/mod.py"))
    for module in project.modules.values():
        project._bind_imports(module)
    return analyze_lifecycle(project)


def test_scope_leaks_on_early_return():
    findings = _analyze(
        "def f(session, flag):\n"
        "    scope = session.push(flag)\n"
        "    if flag:\n"
        "        return 1\n"
        "    scope.retract()\n"
        "    return 0\n"
    )
    assert [f.rule for f in findings] == ["SIA403"]
    assert findings[0].line == 2
    assert "push" in findings[0].message


def test_try_finally_retract_is_clean():
    findings = _analyze(
        "def f(session, flag):\n"
        "    scope = session.push(flag)\n"
        "    try:\n"
        "        if flag:\n"
        "            return 1\n"
        "        return 0\n"
        "    finally:\n"
        "        scope.retract()\n"
    )
    assert findings == []


def test_handle_leaks_on_exceptional_path():
    # handle.read() can raise; no try/finally guards the close.
    findings = _analyze(
        "def f(path):\n"
        "    handle = open(path)\n"
        "    text = handle.read()\n"
        "    handle.close()\n"
        "    return text\n"
    )
    assert [f.rule for f in findings] == ["SIA403"]
    assert findings[0].line == 2


def test_with_block_is_clean_even_with_return():
    findings = _analyze(
        "def f(path):\n"
        "    with open(path) as handle:\n"
        "        return handle.read()\n"
    )
    assert findings == []


def test_conditional_acquisition_via_ifexp_with_block():
    # The cli.py tracing pattern: acquire through an IfExp, release
    # through the with.
    findings = _analyze(
        "from contextlib import nullcontext\n"
        "def f(path, install_file_tracer):\n"
        "    tracing = install_file_tracer(path) if path else nullcontext()\n"
        "    with tracing as tracer:\n"
        "        return tracer\n"
    )
    assert findings == []


def test_escape_via_call_argument_stops_tracking():
    findings = _analyze(
        "def f(path, consume):\n"
        "    handle = open(path)\n"
        "    consume(handle)\n"
        "    return None\n"
    )
    assert findings == []


def test_escape_via_attribute_store_stops_tracking():
    findings = _analyze(
        "class Holder:\n"
        "    def grab(self, session, flag):\n"
        "        self.scope = session.push(flag)\n"
        "        return None\n"
    )
    assert findings == []


def test_returned_resource_is_callers_problem():
    findings = _analyze(
        "def f(session, flag):\n"
        "    return session.push(flag)\n"
    )
    assert findings == []


def test_discarded_acquisition_is_flagged():
    findings = _analyze(
        "def f(session, flag):\n"
        "    session.push(flag)\n"
        "    return None\n"
    )
    assert [f.rule for f in findings] == ["SIA403"]


def test_release_raising_is_not_a_leak():
    findings = _analyze(
        "def f(session, flag):\n"
        "    scope = session.push(flag)\n"
        "    scope.retract()\n"
        "    return None\n"
    )
    assert findings == []


def test_fixture_package_end_to_end_and_pragma():
    from repro.analysis.flow import flow_paths

    findings, _ = flow_paths([FIXTURES])
    leaks = [f for f in findings if f.rule == "SIA403"]
    assert [(f.file.rsplit("/", 1)[-1], f.line) for f in leaks] == [
        ("sia403_leaks.py", 5),
        ("sia403_leaks.py", 13),
    ]
    # The pragma-sanctioned leak resurfaces when pragmas are ignored.
    unfiltered, _ = flow_paths([FIXTURES], honor_pragmas=False)
    extra = [
        f
        for f in unfiltered
        if f.rule == "SIA403"
        and f.file.endswith("pragma_sanctioned_flow.py")
    ]
    assert len(extra) == 1 and extra[0].line == 7
