"""Module index + call resolution over the fixture package."""

from pathlib import Path

import pytest

from repro.analysis.flow.callgraph import Project, _dotted_key
from repro.analysis.lint import iter_python_files

FIXTURES = Path(__file__).parents[1] / "fixtures" / "flow"


@pytest.fixture(scope="module")
def project():
    return Project.load(iter_python_files([FIXTURES]))


def _module(project, suffix):
    hits = [m for key, m in project.modules.items() if key.endswith(suffix)]
    assert len(hits) == 1, f"{suffix}: {list(project.modules)}"
    return hits[0]


def test_dotted_key_strips_src_prefix():
    assert _dotted_key(Path("src/repro/smt/solver.py")) == "repro.smt.solver"
    assert _dotted_key(Path("src/repro/smt/__init__.py")) == "repro.smt"


def test_relative_import_resolves_cross_module(project):
    taint = _module(project, "core.sia401_taint")
    import ast

    calls = [
        node
        for node in ast.walk(taint.tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "assert_bound"
    ]
    assert calls
    resolved = project.resolve_call(calls[0].func, taint)
    assert resolved is not None
    assert resolved.name == "assert_bound"
    assert resolved.module.dotted.endswith("smt.engine")
    assert resolved.zone == "exact"


def test_local_function_resolves(project):
    taint = _module(project, "core.sia401_taint")
    import ast

    call = next(
        node
        for node in ast.walk(taint.tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "launder"
    )
    resolved = project.resolve_call(call.func, taint)
    assert resolved is not None
    assert resolved.module is taint


def test_method_calls_do_not_resolve(project):
    leaks = _module(project, "core.sia403_leaks")
    import ast

    call = next(
        node
        for node in ast.walk(leaks.tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "push"
    )
    assert project.resolve_call(call.func, leaks) is None


def test_external_module_binding(project):
    report = _module(project, "bench.sia402_report")
    import ast

    name = ast.parse("random").body[0].value
    assert project.external_module_of(name, report) == "random"


def test_functions_have_cfgs_and_params(project):
    engine = _module(project, "smt.engine")
    func = engine.functions["assert_bound"]
    assert func.params == ["session", "value"]
    assert func.cfg.exit is not None
    assert engine.toplevel is not None
