"""Fixpoint engine: joins, must-facts, convergence on loops."""

import ast

from repro.analysis.flow.cfg import Test, build_cfg
from repro.analysis.flow.engine import (
    FlowAnalysis,
    join_states,
    run_fixpoint,
)


def test_join_is_pointwise_union():
    a = {"x": frozenset({"t1"})}
    b = {"x": frozenset({"t2"}), "y": frozenset({"t3"})}
    joined = join_states(a, b)
    assert joined["x"] == frozenset({"t1", "t2"})
    assert joined["y"] == frozenset({"t3"})


def test_must_keys_join_by_intersection_presence():
    must = frozenset({"<seeded>"})
    both = join_states(
        {"<seeded>": frozenset({"yes"})},
        {"<seeded>": frozenset({"yes"})},
        must_keys=must,
    )
    assert "<seeded>" in both
    one_side = join_states(
        {"<seeded>": frozenset({"yes"})}, {}, must_keys=must
    )
    assert "<seeded>" not in one_side
    other_side = join_states(
        {}, {"<seeded>": frozenset({"yes"})}, must_keys=must
    )
    assert "<seeded>" not in other_side


class _Assigned(FlowAnalysis):
    """Toy analysis: which names have been assigned (may)."""

    def transfer(self, stmt, state):
        out = dict(state)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = frozenset({"set"})
        return out


def test_fixpoint_converges_on_loop():
    src = (
        "def f(c):\n"
        "    while c:\n"
        "        x = 1\n"
        "    y = 2\n"
    )
    cfg = build_cfg(ast.parse(src).body[0])
    in_states = run_fixpoint(cfg, _Assigned())
    exit_state = in_states[cfg.exit]
    # x is assigned on some path (loop taken), y on all.
    assert exit_state.get("x") == frozenset({"set"})
    assert exit_state.get("y") == frozenset({"set"})


def test_branch_states_merge_at_join():
    src = (
        "def f(c):\n"
        "    if c:\n"
        "        x = 1\n"
        "    else:\n"
        "        y = 2\n"
        "    z = 3\n"
    )
    cfg = build_cfg(ast.parse(src).body[0])
    in_states = run_fixpoint(cfg, _Assigned())
    exit_state = in_states[cfg.exit]
    assert "x" in exit_state and "y" in exit_state and "z" in exit_state


def test_unreachable_blocks_have_no_in_state():
    src = (
        "def f():\n"
        "    return 1\n"
        "    x = 2\n"
    )
    cfg = build_cfg(ast.parse(src).body[0])
    in_states = run_fixpoint(cfg, _Assigned())
    dead = [
        b.bid
        for b in cfg.blocks
        if isinstance(b.stmt, ast.Assign)
    ]
    # The statically unreachable tail was never built or never reached.
    for bid in dead:
        assert bid not in in_states


def test_test_markers_are_passed_to_transfer():
    seen = []

    class Probe(FlowAnalysis):
        def transfer(self, stmt, state):
            if isinstance(stmt, Test):
                seen.append(ast.dump(stmt.expr))
            return state

    src = "def f(c):\n    if c:\n        pass\n"
    cfg = build_cfg(ast.parse(src).body[0])
    run_fixpoint(cfg, Probe())
    assert seen
