"""CFG construction: block structure, exceptional edges, cleanups."""

import ast

from repro.analysis.flow.cfg import (
    EXC,
    NORM,
    Test,
    WithExit,
    _can_raise,
    build_cfg,
    immediate_exprs,
)


def _cfg_of(src: str):
    node = ast.parse(src).body[0]
    return build_cfg(node)


def _reachable(cfg, start=None):
    seen = set()
    work = [cfg.entry if start is None else start]
    while work:
        bid = work.pop()
        if bid in seen:
            continue
        seen.add(bid)
        work.extend(succ for succ, _ in cfg.blocks[bid].succs)
    return seen


def test_straight_line_reaches_exit():
    cfg = _cfg_of("def f():\n    a = 1\n    b = 2\n    return a + b\n")
    assert cfg.exit in _reachable(cfg)


def test_branch_has_join():
    cfg = _cfg_of(
        "def f(c):\n"
        "    if c:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    return x\n"
    )
    tests = [b for b in cfg.blocks if isinstance(b.stmt, Test)]
    assert len(tests) == 1
    # Both arms are successors of the test block.
    assert len([s for s, k in tests[0].succs if k == NORM]) == 2


def test_call_statement_gets_exceptional_edge_to_exit():
    cfg = _cfg_of("def f(g):\n    g()\n")
    call_blocks = [
        b
        for b in cfg.blocks
        if isinstance(b.stmt, ast.Expr)
    ]
    assert call_blocks
    assert (cfg.exit, EXC) in call_blocks[0].succs


def test_try_except_routes_exception_to_handler():
    cfg = _cfg_of(
        "def f(g):\n"
        "    try:\n"
        "        g()\n"
        "    except ValueError:\n"
        "        return 0\n"
        "    return 1\n"
    )
    handler = [
        b for b in cfg.blocks if isinstance(b.stmt, ast.ExceptHandler)
    ]
    assert len(handler) == 1
    call = [b for b in cfg.blocks if isinstance(b.stmt, ast.Expr)][0]
    assert (handler[0].bid, EXC) in call.succs


def test_return_routes_through_finally():
    cfg = _cfg_of(
        "def f(scope, c):\n"
        "    try:\n"
        "        if c:\n"
        "            return 1\n"
        "        return 0\n"
        "    finally:\n"
        "        scope.retract()\n"
    )
    retract = [
        b
        for b in cfg.blocks
        if isinstance(b.stmt, ast.Expr)
        and isinstance(b.stmt.value, ast.Call)
    ]
    assert len(retract) == 1
    returns = [b for b in cfg.blocks if isinstance(b.stmt, ast.Return)]
    assert len(returns) == 2
    for block in returns:
        # Every return's path reaches the finally body, not the exit
        # directly.
        assert (cfg.exit, NORM) not in block.succs
        assert retract[0].bid in _reachable(cfg, start=block.bid)


def test_return_routes_through_with_exit():
    cfg = _cfg_of(
        "def f(path):\n"
        "    with open(path) as handle:\n"
        "        return handle.read()\n"
    )
    wexit = [b for b in cfg.blocks if isinstance(b.stmt, WithExit)]
    assert len(wexit) == 1
    ret = [b for b in cfg.blocks if isinstance(b.stmt, ast.Return)][0]
    assert (wexit[0].bid, NORM) in ret.succs
    # And the with exit continues to the function exit on that path.
    assert (cfg.exit, NORM) in wexit[0].succs


def test_loop_break_exits_loop():
    cfg = _cfg_of(
        "def f(items):\n"
        "    for item in items:\n"
        "        if item:\n"
        "            break\n"
        "    return 0\n"
    )
    assert cfg.exit in _reachable(cfg)


def test_immediate_exprs_do_not_include_nested_suites():
    stmt = ast.parse("for x in xs:\n    g(x)\n").body[0]
    exprs = immediate_exprs(stmt)
    assert len(exprs) == 1
    assert isinstance(exprs[0], ast.Name)  # the iterable only


def test_annassign_annotation_cannot_raise():
    stmt = ast.parse("x: list[int] = []").body[0]
    assert not _can_raise(stmt)
    stmt = ast.parse("x: list[int] = g()").body[0]
    assert _can_raise(stmt)


def test_module_level_cfg_builds():
    tree = ast.parse("a = 1\nif a:\n    b = 2\n")
    cfg = build_cfg(tree)
    assert cfg.exit in _reachable(cfg)
