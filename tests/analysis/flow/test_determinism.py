"""SIA402: nondeterminism into persisted outputs and merge order."""

from pathlib import Path

from repro.analysis.flow.callgraph import Project
from repro.analysis.flow.determinism import analyze_determinism

FIXTURES = Path(__file__).parents[1] / "fixtures" / "flow"


def _analyze(src: str):
    project = Project()
    project.add_source(src, Path("pkg/core/mod.py"))
    for module in project.modules.values():
        project._bind_imports(module)
    return analyze_determinism(project)


def test_unseeded_random_into_json_dump():
    findings = _analyze(
        "import json\n"
        "import random\n"
        "def persist(out):\n"
        "    tag = random.randint(0, 7)\n"
        "    json.dump({'tag': tag}, out)\n"
    )
    assert [f.rule for f in findings] == ["SIA402"]
    assert findings[0].line == 5
    assert "unseeded" in findings[0].message


def test_seeded_on_every_path_is_clean():
    findings = _analyze(
        "import json\n"
        "import random\n"
        "def persist(out):\n"
        "    random.seed(7)\n"
        "    tag = random.randint(0, 7)\n"
        "    json.dump({'tag': tag}, out)\n"
    )
    assert findings == []


def test_seed_on_one_branch_only_still_fires():
    findings = _analyze(
        "import json\n"
        "import random\n"
        "def persist(out, c):\n"
        "    if c:\n"
        "        random.seed(7)\n"
        "    tag = random.randint(0, 7)\n"
        "    json.dump({'tag': tag}, out)\n"
    )
    assert [f.rule for f in findings] == ["SIA402"]


def test_set_iteration_into_write():
    findings = _analyze(
        "def dump(rows, out):\n"
        "    names = {r.name for r in rows}\n"
        "    for name in names:\n"
        "        out.write(name)\n"
    )
    assert [f.rule for f in findings] == ["SIA402"]
    assert "set iteration" in findings[0].message


def test_sorted_set_is_clean():
    findings = _analyze(
        "def dump(rows, out):\n"
        "    names = {r.name for r in rows}\n"
        "    for name in sorted(names):\n"
        "        out.write(name)\n"
    )
    assert findings == []


def test_id_key_in_sort_is_merge_order_violation():
    findings = _analyze(
        "def merge(rows):\n"
        "    return sorted(rows, key=lambda r: id(r))\n"
    )
    assert [f.rule for f in findings] == ["SIA402"]
    assert "id()" in findings[0].message


def test_random_instance_with_seed_is_clean():
    # random.Random(seed) is the sanctioned deterministic API; its
    # method calls resolve to nothing and carry no taint.
    findings = _analyze(
        "import json\n"
        "import random\n"
        "def persist(out):\n"
        "    rng = random.Random(7)\n"
        "    json.dump({'tag': rng.randint(0, 7)}, out)\n"
    )
    assert findings == []


def test_aliased_from_import_random_is_caught():
    findings = _analyze(
        "import json\n"
        "from random import randint as roll\n"
        "def persist(out):\n"
        "    json.dump({'tag': roll(0, 7)}, out)\n"
    )
    assert [f.rule for f in findings] == ["SIA402"]


def test_fixture_package_end_to_end():
    from repro.analysis.flow import flow_paths

    findings, _ = flow_paths([FIXTURES])
    det = [f for f in findings if f.rule == "SIA402"]
    assert [(f.file.rsplit("/", 1)[-1], f.line) for f in det] == [
        ("sia402_report.py", 9),
        ("sia402_report.py", 15),
        ("sia402_report.py", 19),
    ]
