"""Nondeterminism flowing into persisted rows and merge order."""

import json
import random


def persist(rows, out):
    tag = random.randint(0, 7)
    json.dump({"tag": tag}, out)


def dump_names(rows, out):
    names = {row.name for row in rows}
    for name in names:
        out.write(name)


def merge(rows):
    return sorted(rows, key=lambda row: id(row))
