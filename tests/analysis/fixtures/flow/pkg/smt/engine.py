"""Exact-zone functions the flow fixtures sink into."""


def assert_bound(session, value):
    return session.check(value)


def encode(value, shift):
    return value + shift
