"""Resources leaked on some normal or exceptional path."""


def leak_scope(session, flag):
    scope = session.push(flag)
    if flag:
        return 1
    scope.retract()
    return 0


def leak_handle(path):
    handle = open(path)
    text = handle.read()
    handle.close()
    return text
