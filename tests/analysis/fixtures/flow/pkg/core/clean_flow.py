"""Patterns the flow passes must accept without findings."""

import json
import random

from ..smt.engine import assert_bound


def retract_on_all_paths(session, flag):
    scope = session.push(flag)
    try:
        if flag:
            return 1
        return 0
    finally:
        scope.retract()


def with_block(path):
    with open(path) as handle:
        return handle.read()


def seeded(out):
    random.seed(7)
    tag = random.randint(0, 7)
    json.dump({"tag": tag}, out)


def ordered(rows, out):
    names = {row.name for row in rows}
    for name in sorted(names):
        out.write(name)


def exact_flow(session, q):
    return assert_bound(session, q)
