"""Float taint laundered through a helper, sunk cross-module.

Syntactically silent: the float literal lives in general-zone code
where SIA001 does not apply; only the interprocedural pass (SIA401)
sees it reach the exact zone.
"""

from ..smt.engine import assert_bound


def launder(x):
    scale = 0.5
    return x * scale


def drive(session, q):
    v = launder(q)
    return assert_bound(session, v)
