"""Deliberate leak sanctioned with a pragma (flow honors # sia:)."""


def keep_scope(session, formula):
    # sia: allow(SIA403) -- process-lifetime scope: the session owns
    # it and retracts everything at interpreter exit.
    scope = session.push(formula)
    return None
