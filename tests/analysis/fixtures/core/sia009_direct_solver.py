"""Planted SIA009: a cold Solver built inside the core zone."""


def mine_counter_example(formula):
    solver = Solver(bnb_budget=100)
    solver.add(formula)
    return solver.check()
