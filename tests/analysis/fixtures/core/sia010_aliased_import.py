"""Clock read through an aliased from-import (SIA010 bypass attempt)."""

from time import perf_counter as tick


def measure(work):
    start = tick()
    work()
    return tick() - start
