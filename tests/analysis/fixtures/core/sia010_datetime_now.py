"""Wall-clock read through datetime (SIA010 bypass attempt)."""

import datetime


def stamp(record):
    record["at"] = datetime.datetime.now().isoformat()
    return record
