"""Planted SIA010: a direct wall-clock read outside repro/obs/."""
import time


def elapsed(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start
