"""Channel-protocol seeds: the single-producer side-channel sanction.

``Beacons`` defines both ``post`` and ``drain``, so the inventory marks
its module-level singleton ``CHANNEL`` *channel-capable*: workers
posting into it is the telemetry design, not an unsynchronized write
(SIA501 stays quiet), and aggregation code may call ``post`` /
``drain`` / ``reset`` freely (SIA504 sanctions the accessors).  A raw
field poke still bypasses the protocol and is flagged by SIA504.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


class Beacons:
    """Channel-capable: defines both post() and drain()."""

    def __init__(self):
        self.slots = {}

    def post(self, key, value):
        self.slots[key] = value

    def drain(self):
        items = self.slots
        self.slots = {}
        return items

    def reset(self):
        self.slots = {}


CHANNEL = Beacons()


def beat(task):
    CHANNEL.post(task, "busy")  # clean: sanctioned channel accessor
    CHANNEL.latest = task  # SIA504 raw poke; SIA501-clean (channel)


def collect(tasks):
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(mp_context=context) as pool:
        list(pool.map(beat, tasks))
    return CHANNEL.drain()  # clean: sanctioned channel accessor
