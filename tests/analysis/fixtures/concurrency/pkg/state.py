"""Shared-state definitions the concurrency fixtures write.

Definitions only -- every module in this file's package imports from
here, and the rules must charge writes to these registries back to
this module's inventory entries.
"""

import threading

REGISTRY: dict = {}
EVENTS: list = []
LOCK = threading.Lock()


class CounterBox:
    """Delta-capable registry: speaks the snapshot/delta protocol."""

    def __init__(self):
        self.value = 0

    def snapshot(self):
        return {"value": self.value}

    def delta_since(self, before):
        return {"value": self.value - before["value"]}


GLOBAL_BOX = CounterBox()
