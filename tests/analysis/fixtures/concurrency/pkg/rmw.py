"""SIA503 seeds: unlocked read-modify-writes on shared registries.

Covers the augmented-assignment shape, the check-then-insert shape on
a module-level dict, and both shapes on a singleton class's instance
table (``STORE = ItemStore()`` makes ``self._items`` process-global).
"""

import threading

from .state import REGISTRY

COUNTS: dict = {}
_CACHE_LOCK = threading.Lock()


class ItemStore:
    """Singleton whose instance table is process-global."""

    def __init__(self):
        self._items: dict = {}

    def put(self, key, value):
        if key not in self._items:
            self._items[key] = value  # SIA503: check-then-insert

    def bump(self, key):
        self._items[key] += 1  # SIA503: read-modify-write


STORE = ItemStore()


def tally(key):
    COUNTS[key] += 1  # SIA503: read-modify-write


def get_or_create(key):
    value = REGISTRY.get(key)
    if value is None:
        value = REGISTRY[key] = object()  # SIA503: check-then-insert
    return value


def locked_tally(key):
    with _CACHE_LOCK:
        COUNTS[key] = COUNTS.get(key, 0) + 1  # clean: lock-guarded
