"""SIA504 seeds: aggregation bypassing the snapshot/delta protocol.

This module dispatches work across a process pool, so every access to
the delta-capable ``GLOBAL_BOX`` must be a protocol method; the raw
field read in ``aggregate`` and the raw write in ``carry_over`` mix
parent-local state into worker totals.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from .state import GLOBAL_BOX


def batch(task):
    before = GLOBAL_BOX.snapshot()  # clean: protocol method
    return GLOBAL_BOX.delta_since(before)  # clean: protocol method


def aggregate(tasks):
    total = 0
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(mp_context=context) as pool:
        for delta in pool.map(batch, tasks):
            total += delta["value"]
    return total + GLOBAL_BOX.value  # SIA504: raw field read


def carry_over(amount):
    GLOBAL_BOX.value = amount  # SIA504: raw field write
