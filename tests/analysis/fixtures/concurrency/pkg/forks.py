"""SIA502 seeds: fork-inheritance and pickling hazards.

Three shapes: pools constructed without an explicit start method,
parent-side mutation of a shared registry while a pool is live, and
dispatch payloads that cannot cross the process boundary.
"""

from concurrent.futures import ProcessPoolExecutor

from .state import EVENTS, REGISTRY
from .workers import worker


def implicit_start(tasks):
    with ProcessPoolExecutor() as pool:  # SIA502: no mp_context
        return list(pool.map(worker, tasks))


def parent_mutation(tasks):
    with ProcessPoolExecutor() as pool:  # SIA502: no mp_context
        REGISTRY["phase"] = "running"  # SIA502: mutated while pool live
        return list(pool.map(worker, tasks))


def bad_payloads(pool, tasks):
    pool.submit(lambda t: t + 1, tasks)  # SIA502: lambda payload

    def local(t):
        return t

    pool.submit(local, tasks)  # SIA502: nested function payload
    pool.submit(worker, EVENTS)  # SIA502: registry crosses boundary
