"""Sanctioned patterns: none of these may be reported.

Lock-guarded get-or-create, protocol-mediated delta shipping, and a
deliberate exception suppressed through the pragma machinery.
"""

from .state import GLOBAL_BOX, LOCK, REGISTRY


def guarded_put(key, value):
    with LOCK:
        if key not in REGISTRY:
            REGISTRY[key] = value  # clean: lock-guarded


def sanctioned_delta():
    before = GLOBAL_BOX.snapshot()
    return GLOBAL_BOX.delta_since(before)


def deliberate(key):
    # Single-threaded bootstrap path, documented exception.
    REGISTRY[key] = REGISTRY.get(key, 0) + 1  # sia: allow(SIA503)
