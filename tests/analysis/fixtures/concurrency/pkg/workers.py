"""SIA501 seeds: worker-reachable writes to shared state.

``run`` dispatches ``worker`` and ``guarded_worker`` across a process
pool; the escape analysis must close over the call graph and flag the
unsynchronized writes in ``worker`` and ``record_result`` while
accepting the lock-guarded write and the worker-local intern table.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from .smt.core import intern_term
from .state import EVENTS, LOCK, REGISTRY


def record_result(key, value):
    REGISTRY[key] = value  # SIA501: reachable via worker()


def worker(task):
    record_result(task, 1)
    intern_term(task)  # clean: worker-local zone (pkg/smt/)
    EVENTS.append(task)  # SIA501: unsynchronized mutator


def guarded_worker(task):
    with LOCK:
        REGISTRY[task] = -1  # clean: lock-guarded


def run(tasks):
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(mp_context=context) as pool:
        done = list(pool.map(worker, tasks))
        done += list(pool.map(guarded_worker, tasks))
    return done
