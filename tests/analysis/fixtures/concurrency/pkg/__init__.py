"""Fixture package for the concurrency rules (SIA501-504)."""
