"""Worker-local intern table: exempt from the concurrency rules.

The path carve-out (``smt`` in the module path) marks this module
per-process by contract, so the check-then-insert below must NOT be
reported even though it is reachable from a worker entry point.
"""

INTERN: dict = {}


def intern_term(key):
    cached = INTERN.get(key)
    if cached is None:
        cached = INTERN[key] = object()
    return cached
