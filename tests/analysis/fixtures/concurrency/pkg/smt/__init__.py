"""Worker-local zone subtree (path part ``smt``)."""
