"""Fixture: SIA003 -- ==/!= on a float operand in the exact zone."""


def compare(value):
    return value == 1.5  # planted violation (line 5)
