"""Fixture: SIA004 -- dynamic evaluation."""


def run(snippet):
    return eval(snippet)  # planted violation (line 5)
