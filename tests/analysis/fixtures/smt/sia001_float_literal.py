"""Fixture: SIA001 -- float literal inside the exact-arithmetic zone."""

THRESHOLD = 0.5  # planted violation (line 3)
