"""Fixture: SIA002 -- float() cast inside the exact-arithmetic zone."""


def leak(value):
    return float(value)  # planted violation (line 5)
