"""Fixture: SIA005 -- bare except clause."""


def swallow(action):
    try:
        action()
    except:  # planted violation (line 7)
        return None
