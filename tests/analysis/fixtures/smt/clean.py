"""Fixture: a clean exact-zone module -- zero findings expected."""

from fractions import Fraction


class Formula:
    __slots__ = ()


class Leaf(Formula):
    __slots__ = ("value",)

    def __init__(self, value):
        object.__setattr__(self, "value", Fraction(value))


def halve(value):
    return Fraction(value) / 2
