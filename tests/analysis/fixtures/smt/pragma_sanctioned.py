"""Fixture: pragmas suppress each band of rules -- zero findings."""

SCORE = 0.5  # sia: allow-float -- heuristic score, not theory arithmetic

# sia: allow-float -- documented crossing with a multi-line
# justification carried in the comment block above the statement.
BOUND = float("1e9")


def touch(node, value):
    # sia: allow(SIA006) -- fixture exercising the generic pragma form
    object.__setattr__(node, "cached", value)
