"""Fixture: SIA006 -- mutating a frozen node outside construction."""


def retarget(atom, expr):
    object.__setattr__(atom, "expr", expr)  # planted violation (line 5)
