"""Fixture: SIA008 -- solver model read without a verdict check."""


def broken(solver):
    solver.check()  # verdict discarded: does not guard the read
    return solver.model()  # planted violation (line 6)


def sanctioned(solver):
    # sia: allow(SIA008) -- test double whose model() never raises
    return solver.model()


def guarded(solver):
    if solver.check() != "sat":
        return None
    return solver.model()


def guarded_by_constant(solver, SAT):
    verdict = solver.check()
    assert verdict == SAT
    return solver.model()
