"""Fixture: SIA007 -- IR node subclass without __slots__ or frozen."""


class Formula:
    __slots__ = ()


class Leaky(Formula):  # planted violation (line 8)
    def __init__(self, arg):
        self.arg = arg
