"""Tests for the section 6.2 deployment features: synthesis timeout
and the plan-cache-style rewrite cache."""

import time

import pytest

from repro.core import SiaConfig, synthesize
from repro.predicates import Col, Column, Comparison, INTEGER, Lit, pand
from repro.rewrite import RewriteCache
from repro.sql import parse_query
from repro.tpch import TPCH_SCHEMA

A1 = Column("t", "a1", INTEGER)
A2 = Column("t", "a2", INTEGER)
B1 = Column("t", "b1", INTEGER)


def hard_predicate():
    """The 2-column motivating predicate: typically runs many iterations."""
    return pand(
        [
            Comparison(Col(A2) - Col(B1), "<", Lit.integer(20)),
            Comparison(
                Col(A1) - Col(A2), "<", (Col(A2) - Col(B1)) + Lit.integer(10)
            ),
            Comparison(Col(B1), "<", Lit.integer(0)),
        ]
    )


def test_timeout_caps_wall_clock():
    config = SiaConfig(timeout_ms=300, seed=0)
    start = time.perf_counter()
    outcome = synthesize(hard_predicate(), {A1, A2}, config)
    elapsed_ms = (time.perf_counter() - start) * 1000
    # Generous slack: one iteration may still be in flight at expiry.
    assert elapsed_ms < 10_000
    assert outcome.status in ("valid", "failed", "optimal")
    if outcome.status == "valid":
        assert outcome.predicate is not None


def test_timeout_never_yields_invalid_predicate():
    from repro.predicates import eval_pred_py

    config = SiaConfig(timeout_ms=200, seed=1)
    outcome = synthesize(hard_predicate(), {A1, A2}, config)
    if not outcome.is_valid or outcome.predicate is None:
        return
    # Validity spot check on known-feasible restrictions.
    for a1, a2 in [(0, 0), (28, 0), (46, 18), (-50, -10)]:
        assert eval_pred_py(outcome.predicate, {A1: a1, A2: a2}) is True


def test_no_timeout_by_default():
    assert SiaConfig().timeout_ms is None


# ----------------------------------------------------------------------
SCHEMA = {name: dict(cols) for name, cols in TPCH_SCHEMA.items()}
SQL = (
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'"
)


def test_cache_hit_skips_synthesis():
    cache = RewriteCache(config=SiaConfig(max_iterations=6))
    query = parse_query(SQL, SCHEMA)

    start = time.perf_counter()
    first = cache.rewrite(query, "lineitem")
    first_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    second = cache.rewrite(parse_query(SQL, SCHEMA), "lineitem")
    second_ms = (time.perf_counter() - start) * 1000

    assert second is first
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert second_ms < max(first_ms / 5, 5.0)


def test_cache_normalizes_query_text():
    cache = RewriteCache(config=SiaConfig(max_iterations=6))
    messy = SQL.replace(" AND", "   AND").replace("SELECT *", "SELECT   *")
    cache.rewrite(parse_query(SQL, SCHEMA), "lineitem")
    cache.rewrite(parse_query(messy, SCHEMA), "lineitem")
    assert cache.stats.hits == 1


def test_cache_distinguishes_target_tables():
    cache = RewriteCache(config=SiaConfig(max_iterations=6))
    query = parse_query(SQL, SCHEMA)
    cache.rewrite(query, "lineitem")
    cache.rewrite(query, "orders")
    assert cache.stats.misses == 2


def test_cache_eviction():
    cache = RewriteCache(config=SiaConfig(max_iterations=2), capacity=1)
    q1 = parse_query(SQL, SCHEMA)
    q2 = parse_query(SQL + " AND l_commitdate - o_orderdate < 99", SCHEMA)
    cache.rewrite(q1, "lineitem")
    cache.rewrite(q2, "lineitem")
    assert cache.stats.evictions == 1
    assert len(cache) == 1
