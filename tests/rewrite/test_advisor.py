"""Tests for the cost-based rewrite advisor."""

import pytest

from repro.core import SiaConfig
from repro.rewrite import advise, rewrite_query
from repro.rewrite.rewriter import RewriteResult
from repro.core.result import SynthesisOutcome, UNSUPPORTED
from repro.sql import parse_query
from repro.tpch import generate_catalog

FAST = SiaConfig(max_iterations=6, seed=2)


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(0.004, seed=4)


def rewrite(catalog, sql):
    query = parse_query(sql, catalog.schema())
    return rewrite_query(query, "lineitem", FAST)


def test_selective_rewrite_is_kept(catalog):
    result = rewrite(
        catalog,
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate - o_orderdate < 20 "
        "AND o_orderdate < DATE '1992-06-01'",  # very early cutoff
    )
    assert result.succeeded
    advice = advise(result, catalog)
    assert advice.keep
    assert advice.selectivity < 0.5
    assert "pay off" in advice.reason


def test_unselective_rewrite_is_dropped(catalog):
    result = rewrite(
        catalog,
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate - o_orderdate < 2000 "
        "AND o_orderdate < DATE '1999-01-01'",  # accepts nearly everything
    )
    if not result.succeeded:
        pytest.skip("nothing synthesized for the wide predicate")
    advice = advise(result, catalog)
    assert advice.selectivity > 0.9
    assert not advice.keep


def test_failed_rewrite(catalog):
    query = parse_query(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey",
        catalog.schema(),
    )
    result = RewriteResult(
        query, SynthesisOutcome(status=UNSUPPORTED), "lineitem"
    )
    advice = advise(result, catalog)
    assert not advice.keep
    assert advice.sampled_rows == 0


def test_sampling_cap(catalog):
    result = rewrite(
        catalog,
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_commitdate - o_orderdate < 45 "
        "AND o_orderdate < DATE '1994-01-01'",
    )
    if not result.succeeded:
        pytest.skip("nothing synthesized")
    advice = advise(result, catalog, sample_rows=500)
    assert advice.sampled_rows == 500


def test_stats_based_advice_agrees_with_sampling(catalog):
    from repro.engine import TableStats
    from repro.rewrite import advise_from_stats

    result = rewrite(
        catalog,
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate - o_orderdate < 20 "
        "AND o_orderdate < DATE '1992-06-01'",
    )
    assert result.succeeded
    stats = TableStats.from_table(catalog.get("lineitem"))
    sampled = advise(result, catalog)
    estimated = advise_from_stats(result, stats)
    assert estimated.keep == sampled.keep
    assert abs(estimated.selectivity - sampled.selectivity) < 0.15
    assert "histogram" in estimated.reason


def test_stats_based_advice_failed_rewrite(catalog):
    from repro.engine import TableStats
    from repro.rewrite import advise_from_stats
    from repro.rewrite.rewriter import RewriteResult
    from repro.core.result import SynthesisOutcome, UNSUPPORTED
    from repro.sql import parse_query

    query = parse_query(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey",
        catalog.schema(),
    )
    result = RewriteResult(query, SynthesisOutcome(status=UNSUPPORTED), "lineitem")
    stats = TableStats.from_table(catalog.get("lineitem"))
    advice = advise_from_stats(result, stats)
    assert not advice.keep
