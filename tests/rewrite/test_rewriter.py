"""Tests for the end-to-end rewriter and rewrite rules."""

import numpy as np
import pytest

from repro.core import SiaConfig
from repro.engine import build_plan, execute
from repro.predicates import Column, DATE, INTEGER
from repro.rewrite import (
    is_syntax_based_prospective,
    pushdown_blocked_tables,
    rewrite_query,
    rewrite_sql,
    synthesis_input,
    target_columns,
)
from repro.sql.binder import parse_query
from repro.tpch import generate_catalog

FAST = SiaConfig(max_iterations=8, seed=1)


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(0.005, seed=5)


@pytest.fixture(scope="module")
def schema(catalog):
    return catalog.schema()


MOTIVATING_SQL = (
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10"
)


def test_synthesis_input_excludes_join(schema):
    query = parse_query(MOTIVATING_SQL, schema)
    pred = synthesis_input(query)
    cols = {c.name for c in pred.columns()}
    assert "o_orderkey" not in cols
    assert "l_orderkey" not in cols
    assert "o_orderdate" in cols


def test_target_columns(schema):
    query = parse_query(MOTIVATING_SQL, schema)
    pred = synthesis_input(query)
    targets = target_columns(pred, "lineitem")
    assert targets == {
        Column("lineitem", "l_shipdate", DATE),
        Column("lineitem", "l_commitdate", DATE),
    }


def test_pushdown_blocked_tables(schema):
    query = parse_query(MOTIVATING_SQL, schema)
    # lineitem has no single-table predicate but is referenced by
    # multi-table conjuncts: blocked.
    assert pushdown_blocked_tables(query) == ["lineitem"]
    assert is_syntax_based_prospective(query)


def test_not_prospective_when_both_tables_have_local_preds(schema):
    sql = (
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate < DATE '1994-01-01' "
        "AND o_orderdate < DATE '1995-01-01' "
        "AND l_shipdate - o_orderdate < 20"
    )
    query = parse_query(sql, schema)
    assert pushdown_blocked_tables(query) == []
    assert not is_syntax_based_prospective(query)


def test_prospective_when_one_side_lacks_local_pred(schema):
    sql = (
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate < DATE '1994-01-01' "
        "AND l_shipdate - o_orderdate < 20"
    )
    query = parse_query(sql, schema)
    assert pushdown_blocked_tables(query) == ["orders"]


def test_rewrite_produces_equivalent_query(catalog, schema):
    query = parse_query(MOTIVATING_SQL, schema)
    result = rewrite_query(query, "lineitem", FAST)
    assert result.succeeded
    assert result.outcome.is_valid
    r1, s1 = execute(build_plan(query), catalog)
    r2, s2 = execute(build_plan(result.rewritten), catalog)
    assert r1.num_rows == r2.num_rows
    key = Column("lineitem", "l_orderkey", INTEGER)
    assert np.array_equal(
        np.sort(r1.column(key)), np.sort(r2.column(key))
    )


def test_rewritten_plan_has_lineitem_filter_below_join(catalog, schema):
    query = parse_query(MOTIVATING_SQL, schema)
    result = rewrite_query(query, "lineitem", FAST)
    text = build_plan(result.rewritten).describe()
    join_pos = text.index("HashJoin")
    # There is a filter mentioning lineitem dates strictly below the join.
    below = text[join_pos:]
    assert "Filter" in below and "l_commitdate" in below


def test_rewrite_reduces_join_input(catalog, schema):
    query = parse_query(MOTIVATING_SQL, schema)
    result = rewrite_query(query, "lineitem", FAST)
    _, s_orig = execute(build_plan(query), catalog)
    _, s_rew = execute(build_plan(result.rewritten), catalog)
    assert s_rew.join_input_tuples <= s_orig.join_input_tuples


def test_rewrite_no_target_columns(schema):
    sql = (
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND o_orderdate < DATE '1994-01-01'"
    )
    query = parse_query(sql, schema)
    result = rewrite_query(query, "lineitem", FAST)
    assert not result.succeeded
    assert result.outcome.status == "unsupported"


def test_rewrite_sql_helper(schema):
    result = rewrite_sql(MOTIVATING_SQL, schema, "lineitem", FAST)
    assert result.original_sql.startswith("SELECT *")
    if result.succeeded:
        assert result.rewritten_sql is not None
        assert len(result.rewritten_sql) > len(result.original_sql)


def test_rewrite_result_properties(schema):
    query = parse_query(MOTIVATING_SQL, schema)
    result = rewrite_query(query, "lineitem", FAST)
    assert result.target_table == "lineitem"
    if result.succeeded:
        assert result.synthesized_predicate is not None
