"""Tests for columnar tables and relations."""

import numpy as np
import pytest

from repro.engine import Catalog, Table
from repro.errors import CatalogError
from repro.predicates import Column, INTEGER


def make_table():
    return Table(
        "t",
        {"a": INTEGER, "b": INTEGER},
        {"a": np.array([1, 2, 3]), "b": np.array([10, 20, 30])},
    )


def test_num_rows():
    assert make_table().num_rows == 3
    assert Table("e", {"a": INTEGER}).num_rows == 0


def test_ragged_columns_rejected():
    with pytest.raises(CatalogError):
        Table(
            "t",
            {"a": INTEGER, "b": INTEGER},
            {"a": np.array([1]), "b": np.array([1, 2])},
        )


def test_column_outside_schema_rejected():
    with pytest.raises(CatalogError):
        Table("t", {"a": INTEGER}, {"b": np.array([1])})


def test_column_ref():
    table = make_table()
    ref = table.column_ref("a")
    assert ref == Column("t", "a", INTEGER)
    with pytest.raises(CatalogError):
        table.column_ref("zzz")


def test_to_relation_and_filter():
    rel = make_table().to_relation()
    assert rel.num_rows == 3
    col_a = Column("t", "a", INTEGER)
    filtered = rel.filter(np.array([True, False, True]))
    assert filtered.num_rows == 2
    assert filtered.column(col_a).tolist() == [1, 3]


def test_relation_take():
    rel = make_table().to_relation()
    taken = rel.take(np.array([2, 0]))
    assert taken.column(Column("t", "a", INTEGER)).tolist() == [3, 1]


def test_relation_take_preserves_null_masks():
    table = Table(
        "t",
        {"a": INTEGER},
        {"a": np.array([1, 2, 3])},
        {"a": np.array([False, True, False])},
    )
    rel = table.to_relation()
    taken = rel.take(np.array([1, 2]))
    nulls = taken.null_mask(Column("t", "a", INTEGER))
    assert nulls.tolist() == [True, False]


def test_relation_project_and_merge():
    rel = make_table().to_relation()
    a = Column("t", "a", INTEGER)
    b = Column("t", "b", INTEGER)
    projected = rel.project([a])
    assert list(projected.data) == [a]
    with pytest.raises(CatalogError):
        rel.project([Column("x", "q", INTEGER)])
    merged = projected.merge(rel.project([b]))
    assert set(merged.data) == {a, b}


def test_merge_length_mismatch():
    rel = make_table().to_relation()
    small = rel.filter(np.array([True, False, False]))
    with pytest.raises(CatalogError):
        rel.merge(small)


def test_catalog():
    catalog = Catalog()
    catalog.register(make_table())
    assert "t" in catalog
    assert catalog.get("T").name == "t"
    with pytest.raises(CatalogError):
        catalog.get("nope")
    assert catalog.schema() == {"t": {"a": INTEGER, "b": INTEGER}}
