"""Tests for plan building and execution."""

import numpy as np
import pytest

from repro.engine import (
    Aggregate,
    AggSpec,
    Catalog,
    Filter,
    HashJoin,
    Project,
    Scan,
    Table,
    build_plan,
    execute,
    split_where,
)
from repro.errors import PlanError
from repro.predicates import Col, Column, Comparison, DOUBLE, INTEGER, Lit, pand
from repro.sql.binder import BoundQuery, parse_query

SCHEMA_A = {"id": INTEGER, "val": INTEGER}
SCHEMA_B = {"id": INTEGER, "score": DOUBLE}


def make_catalog():
    catalog = Catalog()
    catalog.register(
        Table(
            "a",
            SCHEMA_A,
            {"id": np.array([1, 2, 3, 4]), "val": np.array([10, 20, 30, 40])},
        )
    )
    catalog.register(
        Table(
            "b",
            SCHEMA_B,
            {
                "id": np.array([2, 3, 3, 5]),
                "score": np.array([0.5, 1.5, 2.5, 3.5]),
            },
        )
    )
    return catalog


A_ID = Column("a", "id", INTEGER)
A_VAL = Column("a", "val", INTEGER)
B_ID = Column("b", "id", INTEGER)
B_SCORE = Column("b", "score", DOUBLE)


def test_scan():
    rel, stats = execute(Scan("a"), make_catalog())
    assert rel.num_rows == 4
    assert stats.tuples_processed == 4


def test_filter():
    plan = Filter(Scan("a"), Comparison(Col(A_VAL), ">", Lit.integer(15)))
    rel, _ = execute(plan, make_catalog())
    assert rel.column(A_VAL).tolist() == [20, 30, 40]


def test_hash_join_inner():
    plan = HashJoin(Scan("a"), Scan("b"), A_ID, B_ID)
    rel, stats = execute(plan, make_catalog())
    # id 2 matches once, id 3 matches twice.
    assert rel.num_rows == 3
    assert sorted(rel.column(A_ID).tolist()) == [2, 3, 3]
    assert sorted(rel.column(B_SCORE).tolist()) == [0.5, 1.5, 2.5]
    assert stats.join_input_tuples == 8


def test_hash_join_empty_result():
    catalog = make_catalog()
    plan = HashJoin(
        Filter(Scan("a"), Comparison(Col(A_ID), ">", Lit.integer(100))),
        Scan("b"),
        A_ID,
        B_ID,
    )
    rel, _ = execute(plan, catalog)
    assert rel.num_rows == 0


def test_hash_join_skips_null_keys():
    catalog = make_catalog()
    catalog.register(
        Table(
            "n",
            {"id": INTEGER},
            {"id": np.array([2, 3])},
            {"id": np.array([False, True])},
        )
    )
    n_id = Column("n", "id", INTEGER)
    plan = HashJoin(Scan("n"), Scan("b"), n_id, B_ID)
    rel, _ = execute(plan, catalog)
    assert rel.num_rows == 1  # only the non-null key 2


def test_project():
    plan = Project(Scan("a"), (A_VAL,))
    rel, _ = execute(plan, make_catalog())
    assert list(rel.data) == [A_VAL]


def test_aggregate_group_by():
    plan = Aggregate(
        Scan("b"),
        group_by=(B_ID,),
        aggregates=(AggSpec("COUNT"), AggSpec("SUM", B_SCORE), AggSpec("MAX", B_SCORE)),
    )
    rel, _ = execute(plan, make_catalog())
    assert rel.num_rows == 3
    ids = rel.column(B_ID).tolist()
    assert ids == [2, 3, 5]
    counts = rel.column(Column("__agg__", "count", INTEGER)).tolist()
    assert counts == [1, 2, 1]
    sums = rel.column(Column("__agg__", "sum_score", DOUBLE)).tolist()
    assert sums == [0.5, 4.0, 3.5]


def test_aggregate_global():
    plan = Aggregate(Scan("a"), group_by=(), aggregates=(AggSpec("AVG", A_VAL),))
    rel, _ = execute(plan, make_catalog())
    assert rel.num_rows == 1
    assert rel.column(Column("__agg__", "avg_val", DOUBLE)).tolist() == [25.0]


def test_aggspec_validation():
    with pytest.raises(ValueError):
        AggSpec("MEDIAN", A_VAL)
    with pytest.raises(ValueError):
        AggSpec("SUM")


# ----------------------------------------------------------------------
# Plan building / pushdown
# ----------------------------------------------------------------------
def bound_query():
    schema = {"a": SCHEMA_A, "b": SCHEMA_B}
    return parse_query(
        "SELECT * FROM a, b WHERE a.id = b.id AND a.val > 15 AND "
        "a.val + b.score > 20",
        schema,
    )


def test_split_where():
    joins, per_table, residual = split_where(bound_query())
    assert len(joins) == 1
    assert len(per_table["a"]) == 1
    assert per_table["b"] == []
    assert len(residual) == 1


def test_pushdown_plan_shape():
    plan = build_plan(bound_query(), pushdown=True)
    text = plan.describe()
    # The a.val filter must sit below the join.
    join_pos = text.index("HashJoin")
    assert "Filter(a.val > 15" in text
    assert text.index("Filter(a.val > 15") > join_pos


def test_no_pushdown_plan_shape():
    plan = build_plan(bound_query(), pushdown=False)
    text = plan.describe()
    join_pos = text.index("HashJoin")
    filter_pos = text.index("a.val > 15")
    assert filter_pos < join_pos  # filter is above the join in the tree


def test_pushdown_and_no_pushdown_agree():
    catalog = make_catalog()
    query = bound_query()
    r1, s1 = execute(build_plan(query, pushdown=True), catalog)
    r2, s2 = execute(build_plan(query, pushdown=False), catalog)
    assert r1.num_rows == r2.num_rows
    assert sorted(r1.column(A_ID).tolist()) == sorted(r2.column(A_ID).tolist())
    # Pushdown reduces join input.
    assert s1.join_input_tuples <= s2.join_input_tuples


def test_plan_requires_join_condition():
    schema = {"a": SCHEMA_A, "b": SCHEMA_B}
    query = parse_query("SELECT * FROM a, b WHERE a.val > 0", schema)
    with pytest.raises(PlanError):
        build_plan(query)


def test_three_way_join():
    catalog = make_catalog()
    catalog.register(
        Table("c", {"id": INTEGER, "w": INTEGER},
              {"id": np.array([3, 5]), "w": np.array([7, 8])})
    )
    schema = catalog.schema()
    query = parse_query(
        "SELECT * FROM a, b, c WHERE a.id = b.id AND b.id = c.id", schema
    )
    rel, _ = execute(build_plan(query), catalog)
    # id 3 joins twice in b, once in c.
    assert rel.num_rows == 2


def test_projection_applied():
    schema = {"a": SCHEMA_A, "b": SCHEMA_B}
    query = parse_query(
        "SELECT a.val FROM a, b WHERE a.id = b.id", schema
    )
    rel, _ = execute(build_plan(query), make_catalog())
    assert list(rel.data) == [A_VAL]
