"""Tests for table statistics and cardinality estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Table, TableStats, estimate_rows, estimate_selectivity
from repro.engine.statistics import ColumnStats
from repro.predicates import (
    Col,
    Column,
    Comparison,
    INTEGER,
    IsNull,
    Lit,
    PNot,
    pand,
    por,
)

K = Column("t", "k", INTEGER)


def make_stats(values, nulls=None):
    table = Table(
        "t",
        {"k": INTEGER},
        {"k": np.asarray(values)},
        {} if nulls is None else {"k": np.asarray(nulls)},
    )
    return table, TableStats.from_table(table)


def true_selectivity(pred, table):
    from repro.predicates import eval_pred_numpy

    rel = table.to_relation()
    truth, _ = eval_pred_numpy(pred, rel.resolver(), rel.num_rows)
    return truth.mean()


def test_uniform_range_estimates_close():
    table, stats = make_stats(np.arange(1000))
    pred = Comparison(Col(K), "<", Lit.integer(250))
    estimated = estimate_selectivity(pred, stats)
    actual = true_selectivity(pred, table)
    assert abs(estimated - actual) < 0.05


def test_out_of_range_bounds():
    _, stats = make_stats(np.arange(100))
    below = Comparison(Col(K), "<", Lit.integer(-10))
    above = Comparison(Col(K), "<", Lit.integer(10_000))
    assert estimate_selectivity(below, stats) == 0.0
    assert estimate_selectivity(above, stats) == 1.0


def test_equality_uses_ndv():
    _, stats = make_stats(np.repeat(np.arange(10), 10))  # 10 distinct values
    pred = Comparison(Col(K), "=", Lit.integer(3))
    assert estimate_selectivity(pred, stats) == pytest.approx(0.1)


def test_null_fraction():
    _, stats = make_stats(np.arange(100), nulls=np.arange(100) < 20)
    assert estimate_selectivity(IsNull(Col(K)), stats) == pytest.approx(0.2)
    assert estimate_selectivity(IsNull(Col(K), negated=True), stats) == pytest.approx(0.8)
    # Range predicates discount the null fraction.
    everything = Comparison(Col(K), "<=", Lit.integer(99))
    assert estimate_selectivity(everything, stats) == pytest.approx(0.8, abs=0.05)


def test_and_or_not_combinators():
    table, stats = make_stats(np.arange(1000))
    low = Comparison(Col(K), "<", Lit.integer(500))
    high = Comparison(Col(K), ">=", Lit.integer(750))
    both = pand([low, Comparison(Col(K), ">=", Lit.integer(250))])
    either = por([low, high])
    # AND multiplies under the textbook independence assumption, which
    # over-estimates for correlated range conjuncts on the same column:
    # true 0.25 vs 0.5 * 0.75 = 0.375 here.
    assert estimate_selectivity(both, stats) == pytest.approx(
        true_selectivity(both, table), abs=0.15
    )
    assert estimate_selectivity(either, stats) == pytest.approx(
        true_selectivity(either, table), abs=0.15
    )
    negated = PNot(low)
    assert estimate_selectivity(negated, stats) == pytest.approx(0.5, abs=0.05)


def test_mirrored_comparison():
    table, stats = make_stats(np.arange(100))
    pred = Comparison(Lit.integer(30), ">", Col(K))  # k < 30
    assert estimate_selectivity(pred, stats) == pytest.approx(
        true_selectivity(pred, table), abs=0.05
    )


def test_complex_comparison_default():
    _, stats = make_stats(np.arange(100))
    pred = Comparison(Col(K) + Col(K), "<", Lit.integer(10))
    assert 0.0 < estimate_selectivity(pred, stats) < 1.0


def test_estimate_rows():
    _, stats = make_stats(np.arange(1000))
    pred = Comparison(Col(K), "<", Lit.integer(100))
    assert estimate_rows(pred, stats) == pytest.approx(100, abs=40)


def test_empty_column():
    stats = ColumnStats.from_array(np.array([], dtype=np.int64), None)
    assert stats.fraction_below(5.0, inclusive=False) == 0.5


@settings(max_examples=30, deadline=None)
@given(
    cutoff=st.integers(min_value=0, max_value=999),
    op=st.sampled_from(["<", "<=", ">", ">="]),
)
def test_histogram_estimates_within_tolerance(cutoff, op):
    table, stats = make_stats(np.arange(1000))
    pred = Comparison(Col(K), op, Lit.integer(cutoff))
    estimated = estimate_selectivity(pred, stats)
    actual = true_selectivity(pred, table)
    assert abs(estimated - actual) < 0.08
