"""Tests for statistics-driven join ordering."""

import numpy as np
import pytest

from repro.engine import Catalog, Table, TableStats, build_plan, execute
from repro.predicates import INTEGER
from repro.sql import parse_query


@pytest.fixture()
def catalog():
    catalog = Catalog()
    rng = np.random.default_rng(0)
    catalog.register(
        Table(
            "big",
            {"id": INTEGER, "v": INTEGER},
            {"id": np.arange(5000), "v": rng.integers(0, 100, 5000)},
        )
    )
    catalog.register(
        Table(
            "small",
            {"id": INTEGER, "w": INTEGER},
            {"id": np.arange(0, 5000, 100), "w": np.arange(50)},
        )
    )
    return catalog


def stats_for(catalog):
    return {
        name: TableStats.from_table(table)
        for name, table in catalog.tables.items()
    }


def test_order_prefers_smaller_table(catalog):
    query = parse_query(
        "SELECT * FROM big, small WHERE big.id = small.id", catalog.schema()
    )
    plan = build_plan(query, stats=stats_for(catalog))
    text = plan.describe()
    # The smaller table anchors the join tree (appears first / deepest).
    assert text.index("Scan(small)") < text.index("Scan(big)")


def test_filter_changes_the_order(catalog):
    # A filter below `big`'s minimum estimates ~0 rows: `big` becomes
    # the cheaper side despite its raw size.
    query = parse_query(
        "SELECT * FROM big, small WHERE big.id = small.id AND big.v < -5",
        catalog.schema(),
    )
    plan = build_plan(query, stats=stats_for(catalog))
    text = plan.describe()
    assert text.index("Scan(big)") < text.index("Scan(small)")


def test_results_identical_with_and_without_stats(catalog):
    query = parse_query(
        "SELECT * FROM big, small WHERE big.id = small.id AND big.v < 50",
        catalog.schema(),
    )
    rel_plain, _ = execute(build_plan(query), catalog)
    rel_stats, _ = execute(build_plan(query, stats=stats_for(catalog)), catalog)
    assert rel_plain.num_rows == rel_stats.num_rows


def test_missing_stats_fall_back_gracefully(catalog):
    query = parse_query(
        "SELECT * FROM big, small WHERE big.id = small.id", catalog.schema()
    )
    plan = build_plan(query, stats={})  # no per-table entries
    rel, _ = execute(plan, catalog)
    assert rel.num_rows == 50


def test_three_way_order(catalog):
    catalog.register(
        Table(
            "mid",
            {"id": INTEGER},
            {"id": np.arange(0, 5000, 10)},
        )
    )
    query = parse_query(
        "SELECT * FROM big, mid, small "
        "WHERE big.id = mid.id AND mid.id = small.id",
        catalog.schema(),
    )
    plan = build_plan(query, stats=stats_for(catalog))
    rel, _ = execute(plan, catalog)
    assert rel.num_rows == 50
    text = plan.describe()
    assert text.index("Scan(small)") < text.index("Scan(big)")
