"""Tests for execution statistics and the cost proxies."""

import numpy as np

from repro.engine import (
    Catalog,
    Filter,
    HashJoin,
    Scan,
    Table,
    execute,
)
from repro.engine.stats import ExecutionStats
from repro.predicates import Col, Column, Comparison, INTEGER, Lit


def make_catalog():
    catalog = Catalog()
    catalog.register(
        Table("a", {"id": INTEGER}, {"id": np.arange(100)})
    )
    catalog.register(
        Table("b", {"id": INTEGER}, {"id": np.arange(50)})
    )
    return catalog


A_ID = Column("a", "id", INTEGER)
B_ID = Column("b", "id", INTEGER)


def test_operator_records():
    catalog = make_catalog()
    plan = Filter(Scan("a"), Comparison(Col(A_ID), "<", Lit.integer(10)))
    _, stats = execute(plan, catalog)
    labels = [op.label for op in stats.operators]
    assert labels[0].startswith("Scan")
    assert labels[1].startswith("Filter")
    assert stats.operators[1].rows_in == 100
    assert stats.operators[1].rows_out == 10


def test_join_input_tuples():
    catalog = make_catalog()
    plan = HashJoin(Scan("a"), Scan("b"), A_ID, B_ID)
    _, stats = execute(plan, catalog)
    assert stats.join_input_tuples == 150
    assert stats.tuples_processed == 100 + 50 + 150


def test_elapsed_and_peak_bytes_populated():
    catalog = make_catalog()
    plan = HashJoin(Scan("a"), Scan("b"), A_ID, B_ID)
    _, stats = execute(plan, catalog)
    assert stats.elapsed_ms > 0
    assert stats.peak_bytes > 0


def test_summary_renders():
    stats = ExecutionStats()
    stats.record("Scan(a)", 10, 10, 0.5)
    stats.elapsed_ms = 1.0
    text = stats.summary()
    assert "Scan(a)" in text
    assert "in=10" in text


def test_note_bytes_keeps_max():
    stats = ExecutionStats()
    stats.note_bytes(10)
    stats.note_bytes(5)
    assert stats.peak_bytes == 10
