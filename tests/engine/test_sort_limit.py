"""Edge-case tests for the Sort and Limit operators."""

import numpy as np
import pytest

from repro.engine import Catalog, Limit, Scan, Sort, Table, execute
from repro.predicates import Column, DOUBLE, INTEGER

K = Column("t", "k", INTEGER)
V = Column("t", "v", DOUBLE)


@pytest.fixture()
def catalog():
    catalog = Catalog()
    catalog.register(
        Table(
            "t",
            {"k": INTEGER, "v": DOUBLE},
            {
                "k": np.array([3, 1, 2, 1, 3]),
                "v": np.array([0.5, 0.1, 0.9, 0.7, 0.2]),
            },
        )
    )
    catalog.register(Table("empty", {"k": INTEGER}, {"k": np.array([], dtype=np.int64)}))
    return catalog


def test_sort_ascending(catalog):
    rel, _ = execute(Sort(Scan("t"), ((K, True),)), catalog)
    assert rel.column(K).tolist() == [1, 1, 2, 3, 3]


def test_sort_descending(catalog):
    rel, _ = execute(Sort(Scan("t"), ((K, False),)), catalog)
    assert rel.column(K).tolist() == [3, 3, 2, 1, 1]


def test_sort_multi_key(catalog):
    rel, _ = execute(Sort(Scan("t"), ((K, True), (V, False))), catalog)
    assert rel.column(K).tolist() == [1, 1, 2, 3, 3]
    # Within k=1 group, v descends.
    assert rel.column(V).tolist()[:2] == [0.7, 0.1]


def test_sort_empty(catalog):
    empty_k = Column("empty", "k", INTEGER)
    rel, _ = execute(Sort(Scan("empty"), ((empty_k, True),)), catalog)
    assert rel.num_rows == 0


def test_limit_truncates(catalog):
    rel, _ = execute(Limit(Sort(Scan("t"), ((K, True),)), 2), catalog)
    assert rel.column(K).tolist() == [1, 1]


def test_limit_larger_than_input(catalog):
    rel, _ = execute(Limit(Scan("t"), 100), catalog)
    assert rel.num_rows == 5


def test_limit_zero(catalog):
    rel, _ = execute(Limit(Scan("t"), 0), catalog)
    assert rel.num_rows == 0


def test_sort_preserves_row_alignment(catalog):
    rel, _ = execute(Sort(Scan("t"), ((V, True),)), catalog)
    pairs = list(zip(rel.column(K).tolist(), rel.column(V).tolist()))
    assert pairs == sorted(pairs, key=lambda kv: kv[1])
    # Each (k, v) pair must be one of the original rows.
    original = {(3, 0.5), (1, 0.1), (2, 0.9), (1, 0.7), (3, 0.2)}
    assert set(pairs) == original
