"""Tests for the push-below-aggregation rule (paper section 1)."""

import numpy as np
import pytest

from repro.engine import (
    Aggregate,
    AggSpec,
    Catalog,
    Filter,
    Scan,
    Table,
    execute,
    push_filter_below_aggregate,
)
from repro.predicates import Col, Column, Comparison, DOUBLE, INTEGER, Lit, pand

G = Column("t", "g", INTEGER)
V = Column("t", "v", DOUBLE)
COUNT = Column("__agg__", "count", INTEGER)


@pytest.fixture()
def catalog():
    catalog = Catalog()
    catalog.register(
        Table(
            "t",
            {"g": INTEGER, "v": DOUBLE},
            {
                "g": np.array([1, 1, 2, 2, 3]),
                "v": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
            },
        )
    )
    return catalog


def agg_plan():
    return Aggregate(Scan("t"), group_by=(G,), aggregates=(AggSpec("COUNT"),))


def test_filter_on_group_key_moves_below(catalog):
    plan = Filter(agg_plan(), Comparison(Col(G), "<", Lit.integer(3)))
    optimized = push_filter_below_aggregate(plan)
    text = optimized.describe()
    assert text.index("Filter") > text.index("Aggregate")
    # Same result either way.
    rel_orig, _ = execute(plan, catalog)
    rel_opt, _ = execute(optimized, catalog)
    assert rel_orig.num_rows == rel_opt.num_rows == 2
    assert sorted(rel_opt.column(G).tolist()) == [1, 2]
    assert sorted(rel_opt.column(COUNT).tolist()) == [2, 2]


def test_filter_on_non_group_column_stays(catalog):
    plan = Filter(agg_plan(), Comparison(Col(COUNT), ">", Lit.integer(1)))
    optimized = push_filter_below_aggregate(plan)
    text = optimized.describe()
    assert text.index("Filter") < text.index("Aggregate")


def test_mixed_conjunction_splits(catalog):
    pred = pand(
        [
            Comparison(Col(G), "<", Lit.integer(3)),
            Comparison(Col(COUNT), ">", Lit.integer(1)),
        ]
    )
    plan = Filter(agg_plan(), pred)
    optimized = push_filter_below_aggregate(plan)
    text = optimized.describe()
    # Both a filter above and below the aggregate.
    assert text.count("Filter") == 2
    rel, _ = execute(optimized, catalog)
    assert rel.num_rows == 2  # groups 1 and 2, both with count 2


def test_rule_recurses_into_children(catalog):
    inner = Filter(agg_plan(), Comparison(Col(G), "=", Lit.integer(1)))
    outer = Filter(inner, Comparison(Col(COUNT), ">", Lit.integer(0)))
    optimized = push_filter_below_aggregate(outer)
    rel, _ = execute(optimized, catalog)
    assert rel.num_rows == 1


def test_rule_is_identity_elsewhere(catalog):
    plan = Filter(Scan("t"), Comparison(Col(G), "<", Lit.integer(3)))
    optimized = push_filter_below_aggregate(plan)
    rel1, _ = execute(plan, catalog)
    rel2, _ = execute(optimized, catalog)
    assert rel1.num_rows == rel2.num_rows
