"""Unit tests for the typed predicate IR."""

import datetime as dt
from fractions import Fraction

import pytest

from repro.errors import TypeCheckError
from repro.predicates import (
    DATE,
    DOUBLE,
    FALSE_PRED,
    INTEGER,
    TIMESTAMP,
    TRUE_PRED,
    Arith,
    Col,
    Column,
    Comparison,
    Lit,
    PAnd,
    PNot,
    POr,
    pand,
    por,
    walk_comparisons,
)

SHIP = Column("lineitem", "l_shipdate", DATE)
QTY = Column("lineitem", "l_quantity", INTEGER)
PRICE = Column("lineitem", "l_extendedprice", DOUBLE)


def test_column_type_validation():
    with pytest.raises(TypeCheckError):
        Column("t", "c", "TEXT")


def test_column_qualified_name():
    assert SHIP.qualified == "lineitem.l_shipdate"


def test_literal_constructors():
    assert Lit.integer(5).etype == INTEGER
    assert Lit.date("1993-06-01").value == dt.date(1993, 6, 1)
    assert Lit.timestamp("1993-06-01T12:00:00").etype == TIMESTAMP
    assert Lit.double(0.5).value == Fraction(1, 2)


def test_float_literal_becomes_fraction():
    lit = Lit(0.25, DOUBLE)
    assert lit.value == Fraction(1, 4)


def test_numeric_arith_typing():
    expr = Col(QTY) + Lit.integer(3)
    assert expr.etype == INTEGER
    expr2 = Col(QTY) * Col(PRICE)
    assert expr2.etype == DOUBLE


def test_date_minus_date_is_integer():
    recv = Column("lineitem", "l_receiptdate", DATE)
    expr = Col(SHIP) - Col(recv)
    assert expr.etype == INTEGER


def test_date_plus_days_is_date():
    expr = Col(SHIP) + Lit.integer(20)
    assert expr.etype == DATE
    expr2 = Lit.integer(20) + Col(SHIP)
    assert expr2.etype == DATE


def test_date_times_int_rejected():
    with pytest.raises(TypeCheckError):
        Arith("*", Col(SHIP), Lit.integer(2))


def test_date_plus_date_rejected():
    with pytest.raises(TypeCheckError):
        Arith("+", Col(SHIP), Col(SHIP))


def test_comparison_type_check():
    Comparison(Col(SHIP), "<", Lit.date("1993-06-01"))
    Comparison(Col(QTY), "<", Lit.double(1.5))
    with pytest.raises(TypeCheckError):
        Comparison(Col(SHIP), "<", Lit.integer(3))


def test_comparison_normalizes_ne():
    comp = Comparison(Col(QTY), "<>", Lit.integer(0))
    assert comp.op == "!="


def test_comparison_unknown_op():
    with pytest.raises(TypeCheckError):
        Comparison(Col(QTY), "~", Lit.integer(0))


def test_pand_por_folding():
    a = Comparison(Col(QTY), "<", Lit.integer(5))
    assert pand([]) is TRUE_PRED
    assert pand([a, TRUE_PRED]) is a
    assert pand([a, FALSE_PRED]) is FALSE_PRED
    assert por([]) is FALSE_PRED
    assert por([a, TRUE_PRED]) is TRUE_PRED
    assert isinstance(pand([a, PNot(a)]), PAnd)


def test_operator_sugar():
    a = Comparison(Col(QTY), "<", Lit.integer(5))
    b = Comparison(Col(QTY), ">", Lit.integer(0))
    assert isinstance(a & b, PAnd)
    assert isinstance(a | b, POr)
    assert isinstance(~a, PNot)


def test_columns_collection():
    a = Comparison(Col(QTY) + Col(PRICE), ">", Lit.integer(0))
    b = Comparison(Col(SHIP), "<", Lit.date("1994-01-01"))
    pred = a & b
    assert pred.columns() == {QTY, PRICE, SHIP}


def test_conjuncts_iteration():
    a = Comparison(Col(QTY), "<", Lit.integer(5))
    b = Comparison(Col(QTY), ">", Lit.integer(0))
    c = Comparison(Col(PRICE), ">", Lit.double(1.0))
    pred = pand([pand([a, b]), c])
    assert list(pred.conjuncts()) == [a, b, c]
    assert list(a.conjuncts()) == [a]


def test_walk_comparisons():
    a = Comparison(Col(QTY), "<", Lit.integer(5))
    b = Comparison(Col(PRICE), ">", Lit.double(0.0))
    pred = por([a, PNot(b)])
    assert list(walk_comparisons(pred)) == [a, b]
