"""TIMESTAMP-typed columns through the whole predicate stack.

The paper supports TIMESTAMP alongside DATE (section 4.1) with a
seconds-based integer encoding; these tests push timestamps through
typing, lowering, synthesis and both evaluators.
"""

import datetime as dt

import numpy as np
import pytest

from repro.core import synthesize
from repro.errors import TypeCheckError
from repro.predicates import (
    Arith,
    Col,
    Column,
    Comparison,
    INTEGER,
    Lit,
    TIMESTAMP,
    eval_pred_numpy,
    eval_pred_py,
    lower_predicate,
    pand,
    timestamp_to_seconds,
)
from repro.smt import get_model

START = Column("jobs", "started_at", TIMESTAMP)
END = Column("jobs", "finished_at", TIMESTAMP)


def ts(text):
    return dt.datetime.fromisoformat(text)


def test_timestamp_arithmetic_typing():
    diff = Col(END) - Col(START)
    assert diff.etype == INTEGER  # seconds
    shifted = Col(START) + Lit.integer(3600)
    assert shifted.etype == TIMESTAMP
    with pytest.raises(TypeCheckError):
        Arith("*", Col(START), Lit.integer(2))


def test_timestamp_scalar_eval():
    pred = Comparison(Col(END) - Col(START), "<", Lit.integer(3600))
    row = {START: ts("2020-01-01T10:00:00"), END: ts("2020-01-01T10:30:00")}
    assert eval_pred_py(pred, row) is True
    row_late = {START: ts("2020-01-01T10:00:00"), END: ts("2020-01-01T12:00:00")}
    assert eval_pred_py(pred, row_late) is False


def test_timestamp_literal_comparison():
    pred = Comparison(Col(START), "<", Lit.timestamp("2020-06-01T00:00:00"))
    assert eval_pred_py(pred, {START: ts("2020-01-01T00:00:00")}) is True
    assert eval_pred_py(pred, {START: ts("2021-01-01T00:00:00")}) is False


def test_timestamp_lowering_origin():
    pred = pand(
        [
            Comparison(Col(START), ">", Lit.timestamp("2020-01-01T00:00:00")),
            Comparison(Col(END) - Col(START), "<", Lit.integer(7200)),
        ]
    )
    formula, ctx = lower_predicate(pred)
    assert ctx.ts_origin == ts("2020-01-01T00:00:00")
    model = get_model(formula)
    assert model is not None
    decoded = {
        col: ctx.decode_value(model.value(var), col)
        for col, var in ctx.var_of_column.items()
    }
    assert eval_pred_py(pred, decoded) is True


def test_timestamp_synthesis_end_to_end():
    other = Column("jobs", "queued_at", TIMESTAMP)
    pred = pand(
        [
            Comparison(Col(START) - Col(other), "<", Lit.integer(600)),
            Comparison(Col(other), "<", Lit.timestamp("2020-01-01T00:00:00")),
        ]
    )
    out = synthesize(pred, {START})
    assert out.status == "optimal"
    # started_at < queued_at + 600 with queued_at <= origin - 1s:
    # feasible iff started_at <= origin + 598s.
    origin = ts("2020-01-01T00:00:00")
    assert eval_pred_py(out.predicate, {START: origin + dt.timedelta(seconds=598)}) is True
    assert eval_pred_py(out.predicate, {START: origin + dt.timedelta(seconds=599)}) is False


def test_timestamp_numpy_eval():
    pred = Comparison(Col(START), "<", Lit.timestamp("2020-06-01T00:00:00"))
    values = np.array(
        [
            timestamp_to_seconds(ts("2020-01-01T00:00:00")),
            timestamp_to_seconds(ts("2020-12-01T00:00:00")),
        ]
    )
    truth, _ = eval_pred_numpy(pred, lambda c: (values, None), 2)
    assert truth.tolist() == [True, False]
