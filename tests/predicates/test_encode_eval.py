"""Tests for the 3VL encoding and both evaluators."""

import datetime as dt
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    DATE,
    DOUBLE,
    INTEGER,
    Col,
    Column,
    Comparison,
    IsNull,
    Lit,
    LinearizationContext,
    PNot,
    eval_pred_numpy,
    eval_pred_py,
    falsity_formula,
    pand,
    por,
    selectivity,
    truth_formula,
)
from repro.smt import Not, conj, is_satisfiable, negate

A = Column("t", "a", INTEGER)
B = Column("t", "b", INTEGER)
SHIP = Column("lineitem", "l_shipdate", DATE)
PRICE = Column("lineitem", "l_extendedprice", DOUBLE)


# ----------------------------------------------------------------------
# Scalar 3VL evaluation
# ----------------------------------------------------------------------
def test_eval_simple_comparison():
    pred = Comparison(Col(A), "<", Lit.integer(5))
    assert eval_pred_py(pred, {A: 3}) is True
    assert eval_pred_py(pred, {A: 7}) is False
    assert eval_pred_py(pred, {A: None}) is None


def test_eval_kleene_and():
    pred = pand(
        [Comparison(Col(A), "<", Lit.integer(5)), Comparison(Col(B), ">", Lit.integer(0))]
    )
    assert eval_pred_py(pred, {A: 3, B: 1}) is True
    assert eval_pred_py(pred, {A: 3, B: None}) is None
    # FALSE dominates NULL in a conjunction.
    assert eval_pred_py(pred, {A: 9, B: None}) is False


def test_eval_kleene_or():
    pred = por(
        [Comparison(Col(A), "<", Lit.integer(5)), Comparison(Col(B), ">", Lit.integer(0))]
    )
    # TRUE dominates NULL in a disjunction.
    assert eval_pred_py(pred, {A: 3, B: None}) is True
    assert eval_pred_py(pred, {A: 9, B: None}) is None
    assert eval_pred_py(pred, {A: 9, B: -1}) is False


def test_eval_not_null():
    pred = PNot(Comparison(Col(A), "<", Lit.integer(5)))
    assert eval_pred_py(pred, {A: None}) is None
    assert eval_pred_py(pred, {A: 9}) is True


def test_eval_is_null():
    pred = IsNull(Col(A))
    assert eval_pred_py(pred, {A: None}) is True
    assert eval_pred_py(pred, {A: 1}) is False
    negated = IsNull(Col(A), negated=True)
    assert eval_pred_py(negated, {A: None}) is False


def test_eval_date_arithmetic():
    pred = Comparison(
        Col(SHIP) - Lit.date("1993-06-01"), "<", Lit.integer(20)
    )
    assert eval_pred_py(pred, {SHIP: dt.date(1993, 6, 10)}) is True
    assert eval_pred_py(pred, {SHIP: dt.date(1993, 7, 10)}) is False


def test_eval_division_by_zero_is_null():
    pred = Comparison(Col(A) / Col(B), ">", Lit.integer(0))
    assert eval_pred_py(pred, {A: 1, B: 0}) is None


# ----------------------------------------------------------------------
# 3VL SMT encoding
# ----------------------------------------------------------------------
def test_truth_requires_non_null():
    pred = Comparison(Col(A), "<", Lit.integer(5))
    ctx = LinearizationContext.for_predicate(pred)
    t = truth_formula(pred, ctx)
    flag = ctx.null_flag(A)
    assert not is_satisfiable(conj([t, flag]))
    assert is_satisfiable(conj([t, Not(flag)]))


def test_truth_and_falsity_disjoint():
    pred = pand(
        [Comparison(Col(A), "<", Lit.integer(5)), Comparison(Col(B), ">", Lit.integer(0))]
    )
    ctx = LinearizationContext.for_predicate(pred)
    t = truth_formula(pred, ctx)
    f = falsity_formula(pred, ctx)
    assert not is_satisfiable(conj([t, f]))
    # NULL state exists: neither TRUE nor FALSE.
    assert is_satisfiable(conj([negate(t), negate(f)]))


def test_disjunction_true_with_one_null_branch():
    """a < 5 OR b > 0 can be TRUE while b is NULL -- the 3VL subtlety
    that makes some disjunctive predicates unsynthesizable."""
    pred = por(
        [Comparison(Col(A), "<", Lit.integer(5)), Comparison(Col(B), ">", Lit.integer(0))]
    )
    ctx = LinearizationContext.for_predicate(pred)
    t = truth_formula(pred, ctx)
    assert is_satisfiable(conj([t, ctx.null_flag(B)]))


def test_scalar_eval_matches_smt_encoding():
    pred = pand(
        [
            Comparison(Col(A) + Col(B), "<", Lit.integer(10)),
            por(
                [
                    Comparison(Col(A), ">", Lit.integer(0)),
                    Comparison(Col(B), "=", Lit.integer(7)),
                ]
            ),
        ]
    )
    ctx = LinearizationContext.for_predicate(pred)
    t = truth_formula(pred, ctx)
    from repro.smt import LinExpr, compare

    for a in (-3, 0, 2, 7):
        for b in (-1, 7, 8):
            fixed = conj(
                [
                    compare(LinExpr.var(ctx.var(A)), "=", LinExpr.const_expr(a)),
                    compare(LinExpr.var(ctx.var(B)), "=", LinExpr.const_expr(b)),
                    Not(ctx.null_flag(A)),
                    Not(ctx.null_flag(B)),
                ]
            )
            smt_true = is_satisfiable(conj([t, fixed]))
            assert smt_true == (eval_pred_py(pred, {A: a, B: b}) is True)


# ----------------------------------------------------------------------
# Vectorised evaluation
# ----------------------------------------------------------------------
def _resolver(data, nulls=None):
    def resolve(column):
        mask = None if nulls is None else nulls.get(column)
        return data[column], mask

    return resolve


def test_numpy_eval_matches_scalar():
    pred = pand(
        [
            Comparison(Col(A) + Col(B), "<", Lit.integer(10)),
            Comparison(Col(A), ">", Lit.integer(0)),
        ]
    )
    a_vals = np.array([1, 5, -2, 9, 0])
    b_vals = np.array([3, 9, 1, 0, 2])
    truth, nullmask = eval_pred_numpy(
        pred, _resolver({A: a_vals, B: b_vals}), 5
    )
    for i in range(5):
        expected = eval_pred_py(pred, {A: int(a_vals[i]), B: int(b_vals[i])})
        assert truth[i] == (expected is True)
        assert nullmask[i] == (expected is None)


def test_numpy_eval_with_nulls():
    pred = por(
        [Comparison(Col(A), "<", Lit.integer(5)), Comparison(Col(B), ">", Lit.integer(0))]
    )
    a_vals = np.array([1, 9, 9])
    b_vals = np.array([0, 0, 5])
    a_nulls = np.array([False, True, True])
    truth, nullmask = eval_pred_numpy(
        pred, _resolver({A: a_vals, B: b_vals}, {A: a_nulls, B: None}), 3
    )
    # row0: 1<5 -> TRUE; row1: NULL or 0>0=FALSE -> NULL; row2: NULL or TRUE -> TRUE
    assert truth.tolist() == [True, False, True]
    assert nullmask.tolist() == [False, True, False]


def test_numpy_date_comparison():
    pred = Comparison(Col(SHIP), "<", Lit.date("1993-06-01"))
    from repro.predicates import date_to_days

    values = np.array(
        [date_to_days(dt.date(1993, 5, 1)), date_to_days(dt.date(1993, 7, 1))]
    )
    truth, _ = eval_pred_numpy(pred, _resolver({SHIP: values}), 2)
    assert truth.tolist() == [True, False]


def test_numpy_division_by_zero_null():
    pred = Comparison(Col(A) / Col(B), ">", Lit.integer(0))
    truth, nullmask = eval_pred_numpy(
        pred, _resolver({A: np.array([4, 4]), B: np.array([2, 0])}), 2
    )
    assert truth.tolist() == [True, False]
    assert nullmask.tolist() == [False, True]


def test_selectivity():
    pred = Comparison(Col(A), "<", Lit.integer(5))
    values = np.arange(10)
    assert selectivity(pred, _resolver({A: values}), 10) == 0.5
    assert selectivity(pred, _resolver({A: values[:0]}), 0) == 1.0


@settings(max_examples=40, deadline=None)
@given(
    a=st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
    b=st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
)
def test_numpy_and_scalar_agree_property(a, b):
    pred = pand(
        [
            Comparison(Col(A) - Col(B), "<=", Lit.integer(3)),
            por(
                [
                    Comparison(Col(A), ">", Lit.integer(0)),
                    PNot(Comparison(Col(B), "=", Lit.integer(2))),
                ]
            ),
        ]
    )
    scalar = eval_pred_py(pred, {A: a, B: b})
    data = {
        A: np.array([a if a is not None else 0]),
        B: np.array([b if b is not None else 0]),
    }
    nulls = {
        A: np.array([a is None]),
        B: np.array([b is None]),
    }
    truth, nullmask = eval_pred_numpy(pred, _resolver(data, nulls), 1)
    assert truth[0] == (scalar is True)
    assert nullmask[0] == (scalar is None)


def test_double_column_fraction_values():
    pred = Comparison(Col(PRICE) * Lit.double(0.5), "<", Lit.double(2.5))
    assert eval_pred_py(pred, {PRICE: Fraction(4)}) is True
    assert eval_pred_py(pred, {PRICE: Fraction(6)}) is False
