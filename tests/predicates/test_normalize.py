"""Tests for SMT lowering: type conversion, packing, origins."""

import datetime as dt
from fractions import Fraction

import pytest

from repro.errors import UnsupportedPredicateError
from repro.predicates import (
    DATE,
    DOUBLE,
    INTEGER,
    Col,
    Column,
    Comparison,
    Lit,
    LinearizationContext,
    lower_predicate,
    pand,
)
from repro.smt import REAL, get_model, is_satisfiable

SHIP = Column("lineitem", "l_shipdate", DATE)
COMMIT = Column("lineitem", "l_commitdate", DATE)
ORDER = Column("orders", "o_orderdate", DATE)
QTY = Column("lineitem", "l_quantity", INTEGER)
PRICE = Column("lineitem", "l_extendedprice", DOUBLE)
TAX = Column("lineitem", "l_tax", DOUBLE)


def test_date_origin_is_min_literal():
    pred = pand(
        [
            Comparison(Col(SHIP), "<", Lit.date("1994-01-01")),
            Comparison(Col(COMMIT), ">", Lit.date("1993-06-01")),
        ]
    )
    ctx = LinearizationContext.for_predicate(pred)
    assert ctx.date_origin == dt.date(1993, 6, 1)


def test_date_literal_encoding_relative_to_origin():
    pred = Comparison(Col(SHIP), "<", Lit.date("1993-06-01"))
    formula, ctx = lower_predicate(pred)
    assert ctx.encode_literal(Lit.date("1993-06-21")) == 20
    assert ctx.encode_literal(Lit.date("1993-05-31")) == -1
    # The lowered atom is var < 0 (origin encodes to zero).
    atom = formula
    assert atom.expr.const == 0 or atom.expr.variables()


def test_decode_value_roundtrip():
    pred = Comparison(Col(SHIP), "<", Lit.date("1993-06-01"))
    _, ctx = lower_predicate(pred)
    var = ctx.var(SHIP)
    assert ctx.decode_value(Fraction(20), SHIP) == dt.date(1993, 6, 21)
    assert var.is_int


def test_double_column_gets_real_sort():
    pred = Comparison(Col(PRICE), ">", Lit.double(10.5))
    _, ctx = lower_predicate(pred)
    assert ctx.var(PRICE).sort == REAL


def test_integer_column_gets_int_sort():
    pred = Comparison(Col(QTY), ">", Lit.integer(0))
    _, ctx = lower_predicate(pred)
    assert ctx.var(QTY).is_int


def test_motivating_example_lowering_is_satisfiable():
    pred = pand(
        [
            Comparison(Col(SHIP) - Col(ORDER), "<", Lit.integer(20)),
            Comparison(
                Col(COMMIT) - Col(SHIP), "<", (Col(SHIP) - Col(ORDER)) + Lit.integer(10)
            ),
            Comparison(Col(ORDER), "<", Lit.date("1993-06-01")),
        ]
    )
    formula, ctx = lower_predicate(pred)
    model = get_model(formula)
    assert model is not None
    # Decoded model must satisfy the predicate in SQL space.
    from repro.predicates import eval_pred_py

    row = {
        col: ctx.decode_value(model.value(var), col)
        for col, var in ctx.var_of_column.items()
    }
    assert eval_pred_py(pred, row) is True


def test_scaling_by_constants():
    pred = Comparison(Lit.integer(2) * Col(QTY) + Lit.integer(1), "<", Lit.integer(8))
    formula, ctx = lower_predicate(pred)
    var = ctx.var(QTY)
    assert formula.expr.coeff(var) == 2


def test_division_by_constant():
    pred = Comparison(Col(PRICE) / Lit.integer(4), "<", Lit.integer(2))
    formula, ctx = lower_predicate(pred)
    assert formula.expr.coeff(ctx.var(PRICE)) == Fraction(1, 4)


def test_division_by_zero_rejected():
    pred = Comparison(Col(QTY) / Lit.integer(0), "<", Lit.integer(2))
    with pytest.raises(UnsupportedPredicateError):
        lower_predicate(pred)


def test_nonlinear_product_is_packed():
    pred = Comparison(Col(PRICE) * Col(TAX), "<", Lit.double(100.0))
    formula, ctx = lower_predicate(pred)
    assert len(ctx.packed_expr_of_var) == 1
    assert is_satisfiable(formula)


def test_packing_rejected_when_columns_shared():
    # PRICE appears both inside the product and alone: section 5.2's
    # packing trick does not apply.
    pred = pand(
        [
            Comparison(Col(PRICE) * Col(TAX), "<", Lit.double(100.0)),
            Comparison(Col(PRICE), ">", Lit.double(1.0)),
        ]
    )
    with pytest.raises(UnsupportedPredicateError):
        lower_predicate(pred)


def test_column_quotient_is_packed():
    pred = Comparison(Col(PRICE) / Col(TAX), "<", Lit.double(3.0))
    _, ctx = lower_predicate(pred)
    assert len(ctx.packed_expr_of_var) == 1


def test_same_product_packs_once():
    pred = pand(
        [
            Comparison(Col(PRICE) * Col(TAX), "<", Lit.double(100.0)),
            Comparison(Col(PRICE) * Col(TAX), ">", Lit.double(1.0)),
        ]
    )
    _, ctx = lower_predicate(pred)
    assert len(ctx.packed_expr_of_var) == 1
