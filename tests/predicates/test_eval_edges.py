"""Edge-case coverage for the evaluators and error types."""

import datetime as dt

import pytest

from repro.errors import (
    CatalogError,
    ParseError,
    PlanError,
    ReproError,
    SynthesisError,
    TypeCheckError,
    UnsupportedPredicateError,
)
from repro.predicates import (
    Col,
    Column,
    Comparison,
    DATE,
    FALSE_PRED,
    INTEGER,
    Lit,
    TRUE_PRED,
    eval_expr_py,
    eval_pred_py,
)

A = Column("t", "a", INTEGER)
D = Column("t", "d", DATE)


def test_error_hierarchy():
    for exc in (
        ParseError("x"),
        TypeCheckError("x"),
        UnsupportedPredicateError("x"),
        SynthesisError("x"),
        CatalogError("x"),
        PlanError("x"),
    ):
        assert isinstance(exc, ReproError)


def test_parse_error_position():
    err = ParseError("bad", position=42)
    assert "42" in str(err)
    assert err.position == 42


def test_eval_constants():
    assert eval_pred_py(TRUE_PRED, {}) is True
    assert eval_pred_py(FALSE_PRED, {}) is False


def test_eval_expr_null_propagates_through_arithmetic():
    expr = (Col(A) + Lit.integer(1)) - Col(A)
    assert eval_expr_py(expr, {A: None}) is None


def test_eval_date_shift_both_directions():
    plus = Col(D) + Lit.integer(10)
    minus = Col(D) - Lit.integer(10)
    base = dt.date(1995, 5, 15)
    assert eval_expr_py(plus, {D: base}) == dt.date(1995, 5, 25)
    assert eval_expr_py(minus, {D: base}) == dt.date(1995, 5, 5)


def test_eval_int_plus_date():
    expr = Lit.integer(3) + Col(D)
    assert eval_expr_py(expr, {D: dt.date(2000, 1, 1)}) == dt.date(2000, 1, 4)


def test_eval_date_difference_sign():
    other = Column("t", "d2", DATE)
    expr = Col(D) - Col(other)
    row = {D: dt.date(2000, 1, 10), other: dt.date(2000, 1, 1)}
    assert eval_expr_py(expr, row) == 9
    row_rev = {D: dt.date(2000, 1, 1), other: dt.date(2000, 1, 10)}
    assert eval_expr_py(expr, row_rev) == -9


def test_comparison_all_operators():
    for op, expected in [
        ("<", True),
        ("<=", True),
        (">", False),
        (">=", False),
        ("=", False),
        ("!=", True),
    ]:
        pred = Comparison(Col(A), op, Lit.integer(5))
        assert eval_pred_py(pred, {A: 3}) is expected, op


def test_equal_boundary():
    pred = Comparison(Col(A), "<=", Lit.integer(5))
    assert eval_pred_py(pred, {A: 5}) is True
    strict = Comparison(Col(A), "<", Lit.integer(5))
    assert eval_pred_py(strict, {A: 5}) is False
