"""Tests for syntactic predicate simplification."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    Col,
    Column,
    Comparison,
    DATE,
    INTEGER,
    Lit,
    PAnd,
    eval_pred_py,
    pand,
    simplify_conjunction,
)

A = Column("t", "a", INTEGER)
B = Column("t", "b", INTEGER)
SHIP = Column("lineitem", "l_shipdate", DATE)


def bound(col, op, value):
    return Comparison(Col(col), op, Lit.integer(value))


def test_merges_upper_bounds():
    pred = pand([bound(A, "<=", 5), bound(A, "<=", 3)])
    simplified = simplify_conjunction(pred)
    assert simplified == bound(A, "<=", 3)


def test_merges_lower_bounds():
    pred = pand([bound(A, ">", 0), bound(A, ">=", 4)])
    simplified = simplify_conjunction(pred)
    assert simplified == bound(A, ">=", 4)


def test_strict_beats_nonstrict_at_same_value():
    pred = pand([bound(A, "<", 5), bound(A, "<=", 5)])
    assert simplify_conjunction(pred) == bound(A, "<", 5)


def test_keeps_both_sides():
    pred = pand([bound(A, ">=", 0), bound(A, "<=", 9)])
    simplified = simplify_conjunction(pred)
    assert isinstance(simplified, PAnd)
    assert len(simplified.args) == 2


def test_distinct_columns_untouched():
    pred = pand([bound(A, "<=", 5), bound(B, "<=", 3)])
    simplified = simplify_conjunction(pred)
    assert len(list(simplified.conjuncts())) == 2


def test_passthrough_of_complex_conjuncts():
    complex_part = Comparison(Col(A) - Col(B), "<", Lit.integer(3))
    pred = pand([complex_part, complex_part, bound(A, "<=", 5)])
    simplified = simplify_conjunction(pred)
    conjuncts = list(simplified.conjuncts())
    assert conjuncts.count(complex_part) == 1


def test_date_bounds_merge():
    pred = pand(
        [
            Comparison(Col(SHIP), "<=", Lit.date("1993-06-19")),
            Comparison(Col(SHIP), "<=", Lit.date("1994-01-01")),
        ]
    )
    simplified = simplify_conjunction(pred)
    assert simplified == Comparison(Col(SHIP), "<=", Lit.date("1993-06-19"))


def test_non_conjunction_is_identity():
    pred = bound(A, "<=", 5)
    assert simplify_conjunction(pred) is pred


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.sampled_from(["<", "<=", ">", ">="]), st.integers(-10, 10)),
        min_size=1,
        max_size=6,
    ),
    probe=st.integers(min_value=-15, max_value=15),
)
def test_simplification_preserves_semantics(values, probe):
    pred = pand([bound(A, op, v) for op, v in values])
    simplified = simplify_conjunction(pred)
    assert eval_pred_py(pred, {A: probe}) == eval_pred_py(simplified, {A: probe})
