"""Tests for the top-level package surface."""

import pytest

import repro


def test_version_present():
    assert repro.__version__


def test_lazy_exports_resolve():
    assert callable(repro.synthesize)
    assert callable(repro.rewrite_query)
    assert repro.SIA_DEFAULT.max_iterations == 41
    assert repro.SiaConfig is not None
    assert repro.SIA_V1.initial_true_samples == 110
    assert repro.SIA_V2.initial_false_samples == 220


def test_lazy_export_caches():
    first = repro.Synthesizer
    second = repro.Synthesizer
    assert first is second


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.no_such_symbol


def test_all_lists_exports():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_subpackages_importable():
    import repro.bench
    import repro.core
    import repro.engine
    import repro.learn
    import repro.predicates
    import repro.rewrite
    import repro.smt
    import repro.sql
    import repro.tpch

    assert repro.smt.Solver is not None
    assert repro.engine.execute is not None
