"""``repro top``: heartbeat-log fold and the rendered frame."""

import json

from repro.obs.top import load_feed, render_top, run_top


def _write_feed(path, lines):
    path.write_text(
        "\n".join(json.dumps(line) for line in lines) + "\n",
        encoding="utf-8",
    )


def _feed_lines():
    return [
        {"type": "beacon", "worker": 0, "seq": 1, "rx": 1.0, "query": 0,
         "cell": "l_shipdate/SIA", "phase": "cell", "cells_done": 2,
         "counters": {"checks": 10}},
        {"type": "beacon", "worker": 1, "seq": 1, "rx": 1.1, "query": 1,
         "phase": "ground_truth", "cells_done": 0,
         "counters": {"checks": 4, "pivots": 9}},
        {"type": "driver", "t": 2.0, "done": 0, "total": 4,
         "steals": 0, "requeues": 0, "queue_depth": 3},
        {"type": "driver", "t": 4.0, "done": 2, "total": 4,
         "steals": 1, "requeues": 0, "queue_depth": 1},
        {"type": "silence", "t": 5.0, "worker": 1},
    ]


class TestLoadFeed:
    def test_folds_beacons_counters_and_driver(self, tmp_path):
        path = tmp_path / "heartbeats.jsonl"
        _write_feed(path, _feed_lines())
        state = load_feed(path)
        assert state["beacons"] == 2
        assert state["counters"] == {"checks": 14, "pivots": 9}
        assert state["driver"]["done"] == 2
        assert state["silent"] == [1]
        assert not state["ended"]
        # 2 queries finished across a 2s driver window: 1000ms each.
        assert state["completions"] == [1000.0, 1000.0]

    def test_beacon_after_silence_clears_flag(self, tmp_path):
        path = tmp_path / "heartbeats.jsonl"
        lines = _feed_lines()
        lines.append({"type": "beacon", "worker": 1, "seq": 2, "rx": 6.0})
        _write_feed(path, lines)
        assert load_feed(path)["silent"] == []

    def test_tolerates_torn_and_unknown_lines(self, tmp_path):
        path = tmp_path / "heartbeats.jsonl"
        _write_feed(path, _feed_lines())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "mystery"}\n{"type": "beac')
        state = load_feed(path)
        assert state["beacons"] == 2

    def test_end_line_marks_run_finished(self, tmp_path):
        path = tmp_path / "heartbeats.jsonl"
        lines = _feed_lines() + [{"type": "end", "t": 9.0, "beacons": 2,
                                  "silence_flags": 1}]
        _write_feed(path, lines)
        assert load_feed(path)["ended"]

    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_feed(tmp_path / "nope.jsonl")
        assert state["workers"] == {}
        assert not state["ended"]


class TestRenderTop:
    def test_frame_has_rollup_and_worker_table(self, tmp_path):
        path = tmp_path / "heartbeats.jsonl"
        _write_feed(path, _feed_lines())
        frame = render_top(load_feed(path))
        assert "run running: 2/4 queries done" in frame
        assert "2 seen" in frame and "1 silent" in frame
        assert "query completion p50/p95" in frame
        assert "checks=14" in frame
        assert "l_shipdate/SIA" in frame
        assert "1 (silent)" in frame

    def test_empty_feed_renders_placeholder(self):
        frame = render_top(load_feed("/nonexistent"))
        assert "no worker beacons yet" in frame


class TestRunTop:
    def test_missing_log_exits_1(self, tmp_path, capsys):
        assert run_top(tmp_path / "nope.jsonl", once=True) == 1
        assert "--telemetry" in capsys.readouterr().out

    def test_once_prints_single_frame(self, tmp_path, capsys):
        path = tmp_path / "heartbeats.jsonl"
        _write_feed(path, _feed_lines())
        assert run_top(path, once=True) == 0
        out = capsys.readouterr().out
        assert "run running" in out
        assert "\x1b" not in out  # --once never emits ANSI control

    def test_live_mode_exits_0_when_run_ends(self, tmp_path, capsys):
        path = tmp_path / "heartbeats.jsonl"
        _write_feed(path, _feed_lines() + [{"type": "end", "t": 9.0}])
        assert run_top(path, interval_s=0.01) == 0
        assert "run finished" in capsys.readouterr().out
