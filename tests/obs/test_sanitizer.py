"""Runtime shared-state sanitizer: patching, recording, violations."""

import os
import threading

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry
from repro.obs.sanitizer import (
    SANITIZE_ENV,
    Sanitizer,
    install_sanitizer,
    maybe_install_sanitizer,
    summarize_reports,
    uninstall_sanitizer,
)
from repro.smt import stats as stats_mod
from repro.smt.stats import GLOBAL_COUNTERS, SolverCounters


@pytest.fixture
def sanitizer():
    san = install_sanitizer()
    san.drain()  # start each test from an empty log
    yield san
    uninstall_sanitizer()


def test_install_uninstall_restores_patches():
    original_setattr = SolverCounters.__setattr__
    original_counter = MetricsRegistry.counter
    install_sanitizer()
    assert SolverCounters.__setattr__ is not original_setattr
    assert MetricsRegistry.counter is not original_counter
    uninstall_sanitizer()
    assert SolverCounters.__setattr__ is original_setattr
    assert MetricsRegistry.counter is original_counter


def test_install_is_idempotent():
    first = install_sanitizer()
    assert install_sanitizer() is first
    uninstall_sanitizer()
    uninstall_sanitizer()  # second uninstall is a no-op


def test_counter_writes_recorded(sanitizer):
    GLOBAL_COUNTERS.checks += 1
    GLOBAL_COUNTERS.checks += 1  # two write events, whatever the amount
    GLOBAL_COUNTERS.pivots += 1
    report = sanitizer.drain()
    writes = {
        (a["registry"], a["site"]): a["count"] for a in report.accesses
    }
    assert writes[("GLOBAL_COUNTERS", "checks")] == 2
    assert writes[("GLOBAL_COUNTERS", "pivots")] == 1
    assert report.pid == os.getpid()
    assert report.violations == []


def test_private_instances_not_recorded(sanitizer):
    own = SolverCounters()
    own.checks += 5
    assert own.checks == 5
    report = sanitizer.drain()
    assert not any(
        a["site"] == "checks" for a in report.accesses
    ), "only the global singleton is sanitized"


def test_metric_touches_recorded(sanitizer):
    GLOBAL_METRICS.counter("san.test").inc()
    GLOBAL_METRICS.timer("san.ms").record(1.0)
    report = sanitizer.drain()
    sites = {a["site"] for a in report.accesses}
    assert "counter:san.test" in sites
    assert "timer:san.ms" in sites
    assert all(a["op"] == "touch" for a in report.accesses)


def test_fork_inherited_write_is_violation():
    # Simulate a fork child: the registry's owner pid differs from the
    # writing process's pid.
    san = Sanitizer(owners={"GLOBAL_COUNTERS": os.getpid() + 1})
    san.record("GLOBAL_COUNTERS", "checks", "write")
    san.record("GLOBAL_COUNTERS", "checks", "write")  # deduplicated
    report = san.drain()
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation["kind"] == "fork-inherited-write"
    assert "inherited warm across a fork" in violation["message"]


def test_cross_thread_counter_writes_are_violation(sanitizer):
    done = threading.Event()

    def other():
        GLOBAL_COUNTERS.restarts += 1
        done.set()

    thread = threading.Thread(target=other)
    thread.start()
    thread.join()
    assert done.is_set()
    GLOBAL_COUNTERS.restarts += 1
    report = sanitizer.drain()
    kinds = {v["kind"] for v in report.violations}
    assert "cross-thread-write" in kinds


def test_drain_clears_state(sanitizer):
    GLOBAL_COUNTERS.checks += 1
    assert sanitizer.drain().accesses
    assert sanitizer.drain().accesses == []


def test_maybe_install_from_env(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert maybe_install_sanitizer() is None
    monkeypatch.setenv(SANITIZE_ENV, "1")
    san = maybe_install_sanitizer()
    try:
        assert san is not None
        assert maybe_install_sanitizer() is san
    finally:
        uninstall_sanitizer()


def test_owner_pids_captured_at_import():
    assert stats_mod._OWNER_PID == os.getpid()
    assert metrics_mod._OWNER_PID == os.getpid()


def test_summarize_reports_folds_processes():
    reports = [
        {
            "pid": 100,
            "accesses": [
                {"registry": "GLOBAL_COUNTERS", "site": "checks",
                 "pid": 100, "tid": 1, "op": "write", "count": 3},
            ],
            "violations": [],
        },
        {
            "pid": 200,
            "accesses": [
                {"registry": "GLOBAL_COUNTERS", "site": "pivots",
                 "pid": 200, "tid": 1, "op": "write", "count": 2},
                {"registry": "GLOBAL_METRICS", "site": "counter:x",
                 "pid": 200, "tid": 1, "op": "touch", "count": 1},
            ],
            "violations": [{"kind": "fork-inherited-write",
                            "message": "boom"}],
        },
    ]
    summary = summarize_reports(reports)
    assert summary["processes"] == 2
    assert summary["accesses"] == 6
    assert summary["by_registry"] == {
        "GLOBAL_COUNTERS": 5, "GLOBAL_METRICS": 1,
    }
    assert len(summary["violations"]) == 1


def test_counters_still_work_while_sanitized(sanitizer):
    before = GLOBAL_COUNTERS.snapshot()
    GLOBAL_COUNTERS.checks += 7
    assert GLOBAL_COUNTERS.delta_since(before)["checks"] == 7
