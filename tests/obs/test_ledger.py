"""Run ledger: writer, tolerant reader, profiles and the report table."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_VERSION,
    RunLedger,
    cell_entry,
    load_ledger,
    per_query_profiles,
    render_report,
)


def _payload(query=0, technique="SIA", valid=True, optimal=False,
             partial=False, **extra):
    payload = {
        "query_index": query,
        "subset": ["l_shipdate"],
        "technique": technique,
        "valid": valid,
        "optimal": optimal,
        "partial": partial,
        "possible": True,
        "iterations": 3,
        "generation_ms": 80.0,
        "learning_ms": 15.0,
        "validation_ms": 55.0,
    }
    payload.update(extra)
    return payload


class TestCellEntry:
    def test_keeps_verdict_cost_and_counters(self):
        entry = cell_entry(
            _payload(query=4, optimal=True),
            counters={"checks": 41, "pivots": 310},
            audit="certified",
            deadline_ms=4000.0,
        )
        assert entry["type"] == "cell"
        assert entry["query"] == 4
        assert entry["technique"] == "SIA"
        assert entry["optimal"] is True
        assert entry["partial"] is False
        assert entry["phase_ms"] == {
            "generation": 80.0, "learning": 15.0, "validation": 55.0,
        }
        assert entry["counters"] == {"checks": 41, "pivots": 310}
        assert entry["audit"] == "certified"
        assert entry["deadline_ms"] == 4000.0

    def test_partial_flag_defaults_false_for_old_payloads(self):
        payload = _payload()
        del payload["partial"]
        assert cell_entry(payload)["partial"] is False


class TestRunLedger:
    def test_writes_header_then_flushed_cells(self, tmp_path):
        path = tmp_path / "tele" / "ledger.jsonl"
        config = {"float_filter": "filter+trust-sat", "workers": 2}
        with RunLedger(path, config) as ledger:
            ledger.append(cell_entry(_payload()))
            # Flushed per line: readable while the run is still going.
            header, entries = load_ledger(path)
            assert header["version"] == LEDGER_VERSION
            assert header["config"] == config
            assert len(entries) == 1
        header, entries = load_ledger(path)
        assert len(entries) == 1

    def test_append_after_close_raises(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.close()
        with pytest.raises(ValueError):
            ledger.append(cell_entry(_payload()))

    def test_reader_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.append(cell_entry(_payload(query=0)))
            ledger.append(cell_entry(_payload(query=1)))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "query": 2, "val')
        header, entries = load_ledger(path)
        assert [e["query"] for e in entries] == [0, 1]
        assert header["version"] == LEDGER_VERSION

    def test_reader_tolerates_missing_header(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            json.dumps(cell_entry(_payload())) + "\n", encoding="utf-8"
        )
        header, entries = load_ledger(path)
        assert header == {}
        assert len(entries) == 1


class TestProfilesAndReport:
    def _entries(self):
        return [
            cell_entry(_payload(query=0, optimal=True),
                       counters={"checks": 10}),
            cell_entry(_payload(query=0, technique="DT", valid=False)),
            cell_entry(_payload(query=2, partial=True),
                       counters={"checks": 5}),
        ]

    def test_per_query_profiles_aggregate(self):
        rows = per_query_profiles(self._entries())
        assert [r["query"] for r in rows] == [0, 2]
        first = rows[0]
        assert first["cells"] == 2
        assert first["valid"] == 1
        assert first["optimal"] == 1
        assert first["checks"] == 10
        assert first["total_ms"] == pytest.approx(300.0)
        assert first["phase_ms"]["generation"] == pytest.approx(160.0)
        assert rows[1]["partial"] == 1

    def test_render_report_table_and_totals(self):
        header = {"config": {"float_filter": "filter+trust-sat",
                             "deadline_ms": 4000.0}}
        text = render_report(header, self._entries())
        assert "query" in text.splitlines()[0]
        assert "3 cells over 2 queries: 2 valid, 1 optimal, 1 partial" in text
        assert "float_filter=filter+trust-sat" in text
        assert "deadline_ms=4000.0" in text

    def test_render_report_empty(self):
        assert render_report({}, []) == "ledger has no cell entries"
