"""Span tracer: nesting, attributes, counter deltas, wire format."""

import io
import json

from repro.obs.clock import ManualClock
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_VERSION,
    Tracer,
    get_tracer,
    set_tracer,
)


def _records(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def _spans(sink: io.StringIO) -> dict[str, dict]:
    return {
        r["name"]: r for r in _records(sink) if r["type"] == "span"
    }


def test_meta_line_is_written_first():
    sink = io.StringIO()
    Tracer(sink, trace_id="t1", clock=ManualClock())
    first = _records(sink)[0]
    assert first == {"type": "meta", "trace_id": "t1", "version": TRACE_VERSION}


def test_nesting_follows_context_managers():
    sink = io.StringIO()
    clock = ManualClock()
    tracer = Tracer(sink, trace_id="t", clock=clock)
    with tracer.span("outer"):
        clock.advance(0.010)
        with tracer.span("inner"):
            clock.advance(0.005)
        clock.advance(0.001)
    spans = _spans(sink)
    assert spans["inner"]["parent"] == spans["outer"]["id"]
    assert spans["outer"]["parent"] is None
    # Children close (and are emitted) before their parents.
    names = [r["name"] for r in _records(sink) if r["type"] == "span"]
    assert names == ["inner", "outer"]


def test_span_durations_come_from_the_injected_clock():
    sink = io.StringIO()
    clock = ManualClock(50.0)
    tracer = Tracer(sink, trace_id="t", clock=clock)
    with tracer.span("work"):
        clock.advance(0.25)  # 250 ms
    span = _spans(sink)["work"]
    assert span["t1"] - span["t0"] == 250.0


def test_attributes_via_kwargs_and_set():
    sink = io.StringIO()
    tracer = Tracer(sink, trace_id="t", clock=ManualClock())
    with tracer.span("s", phase="learn") as span:
        span.set(valid=True, count=3)
    attrs = _spans(sink)["s"]["attrs"]
    assert attrs == {"phase": "learn", "valid": True, "count": 3}


def test_counter_deltas_recorded_as_ctr_attrs():
    counters = {"checks": 0, "pivots": 10}
    sink = io.StringIO()
    tracer = Tracer(
        sink,
        trace_id="t",
        clock=ManualClock(),
        counter_source=lambda: dict(counters),
    )
    with tracer.span("phase-span", counters=True):
        counters["checks"] += 4  # pivots unchanged: no attr
    attrs = _spans(sink)["phase-span"]["attrs"]
    assert attrs == {"ctr.checks": 4}


def test_exception_marks_the_span_and_still_emits_it():
    sink = io.StringIO()
    tracer = Tracer(sink, trace_id="t", clock=ManualClock())
    try:
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    span = _spans(sink)["doomed"]
    assert span["attrs"]["error"] == "RuntimeError"


def test_events_attach_to_the_open_span():
    sink = io.StringIO()
    tracer = Tracer(sink, trace_id="t", clock=ManualClock())
    with tracer.span("host"):
        tracer.event("sat.restart", conflicts=12)
    records = _records(sink)
    event = next(r for r in records if r["type"] == "event")
    host = _spans(sink)["host"]
    assert event["span"] == host["id"]
    assert event["attrs"] == {"conflicts": 12}


def test_non_scalar_attrs_are_coerced_to_repr():
    sink = io.StringIO()
    tracer = Tracer(sink, trace_id="t", clock=ManualClock())
    with tracer.span("s", payload=("a", "b")):
        pass
    assert _spans(sink)["s"]["attrs"]["payload"] == "('a', 'b')"


def test_null_tracer_is_inert_and_reusable():
    span = NULL_TRACER.span("anything", counters=True, phase="learn")
    with span as entered:
        entered.set(ignored=1)
    assert NULL_TRACER.enabled is False
    NULL_TRACER.event("nothing")
    NULL_TRACER.close()


def test_set_tracer_swaps_the_global():
    sink = io.StringIO()
    tracer = Tracer(sink, trace_id="t", clock=ManualClock())
    previous = set_tracer(tracer)
    try:
        assert get_tracer() is tracer
    finally:
        set_tracer(previous)
    assert get_tracer() is previous


def test_closed_tracer_stops_writing():
    sink = io.StringIO()
    tracer = Tracer(sink, trace_id="t", clock=ManualClock())
    tracer.close()
    with tracer.span("late"):
        pass
    assert all(r["type"] == "meta" for r in _records(sink))
