"""The injectable clock: ManualClock determinism and installation."""

import pytest

from repro.obs.clock import Clock, ManualClock, get_clock, now, set_clock


def test_real_clock_is_monotonic():
    clock = Clock()
    a = clock.now()
    b = clock.now()
    assert b >= a


def test_manual_clock_advances_exactly():
    clock = ManualClock(100.0)
    assert clock.now() == 100.0
    clock.advance(2.5)
    assert clock.now() == 102.5


def test_manual_clock_rejects_negative_advance():
    clock = ManualClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_set_clock_installs_and_returns_previous():
    manual = ManualClock(7.0)
    previous = set_clock(manual)
    try:
        assert get_clock() is manual
        assert now() == 7.0
        manual.advance(1.0)
        assert now() == 8.0
    finally:
        set_clock(previous)
    assert get_clock() is previous
