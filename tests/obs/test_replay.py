"""Trace replay: forest linking, phase attribution, rendering."""

import io
import json

from repro.obs.clock import ManualClock
from repro.obs.replay import (
    UNTRACED,
    attribution_rows,
    load_trace,
    render_flamegraph,
    render_phase_table,
    replay_to_json,
)
from repro.obs.trace import Tracer


def _write_trace(tmp_path, build):
    """Run ``build(tracer, clock)`` and return the trace path."""
    sink = io.StringIO()
    clock = ManualClock()
    tracer = Tracer(sink, trace_id="fixed", clock=clock)
    build(tracer, clock)
    path = tmp_path / "trace.jsonl"
    path.write_text(sink.getvalue())
    return path


def _cegis_like(tracer, clock):
    with tracer.span("synthesize"):
        with tracer.span("cegis.generate_samples", phase="generate_samples"):
            clock.advance(0.040)
        for index in (1, 2):
            with tracer.span("cegis.iteration", index=index):
                with tracer.span("cegis.learn", phase="learn"):
                    clock.advance(0.030)
                with tracer.span("cegis.verify", phase="verify"):
                    clock.advance(0.010)
                    # nested phase span: must NOT double-charge
                    with tracer.span("inner.check", phase="verify"):
                        clock.advance(0.005)
        clock.advance(0.020)  # untraced residue


def test_forest_linking_and_wall_clock(tmp_path):
    replay = load_trace(_write_trace(tmp_path, _cegis_like))
    assert replay.trace_id == "fixed"
    assert len(replay.roots) == 1
    assert replay.roots[0].name == "synthesize"
    assert replay.wall_ms == 150.0


def test_phase_attribution_ignores_nested_phase_spans(tmp_path):
    replay = load_trace(_write_trace(tmp_path, _cegis_like))
    phases = replay.phase_totals()
    assert phases["generate_samples"]["total_ms"] == 40.0
    assert phases["learn"]["total_ms"] == 60.0
    assert phases["learn"]["count"] == 2
    # verify spans are 15ms each; the nested verify span inside is
    # covered by its parent, not charged again
    assert phases["verify"]["total_ms"] == 30.0


def test_attribution_rows_sum_to_wall_clock(tmp_path):
    replay = load_trace(_write_trace(tmp_path, _cegis_like))
    rows = attribution_rows(replay)
    assert round(sum(row["total_ms"] for row in rows), 4) == replay.wall_ms
    residue = next(row for row in rows if row["phase"] == UNTRACED)
    assert residue["total_ms"] == 20.0
    assert abs(sum(row["share"] for row in rows) - 1.0) < 0.01


def test_counter_attrs_aggregate_per_phase(tmp_path):
    def build(tracer, clock):
        counters = {"pivots": 0}
        tracer._counter_source = lambda: dict(counters)
        with tracer.span("a", phase="verify", counters=True):
            counters["pivots"] += 7
            clock.advance(0.001)
        with tracer.span("b", phase="verify", counters=True):
            counters["pivots"] += 5
            clock.advance(0.001)

    replay = load_trace(_write_trace(tmp_path, build))
    assert replay.phase_totals()["verify"]["counters"] == {"pivots": 12}


def test_orphans_survive_torn_traces(tmp_path):
    path = _write_trace(tmp_path, _cegis_like)
    lines = path.read_text().splitlines()
    # Drop the root span line (last emitted) and tear the final line.
    torn = [line for line in lines if '"name": "synthesize"' not in line]
    torn.append('{"type": "span", "id": 99')
    path.write_text("\n".join(torn))
    replay = load_trace(path)
    assert replay.malformed_lines == 1
    # Children of the missing root are promoted to roots, not dropped.
    assert {root.name for root in replay.roots} >= {"cegis.iteration"}
    assert replay.phase_totals()["learn"]["total_ms"] == 60.0


def test_render_phase_table_mentions_every_phase(tmp_path):
    replay = load_trace(_write_trace(tmp_path, _cegis_like))
    table = render_phase_table(replay)
    for phase in ("generate_samples", "learn", "verify", UNTRACED):
        assert phase in table
    assert "wall-clock 150.0 ms" in table


def test_render_flamegraph_depth_limit(tmp_path):
    replay = load_trace(_write_trace(tmp_path, _cegis_like))
    full = render_flamegraph(replay)
    assert "inner.check" in full
    shallow = render_flamegraph(replay, depth=2)
    assert "inner.check" not in shallow
    assert "synthesize" in shallow


def test_replay_to_json_round_trips(tmp_path):
    replay = load_trace(_write_trace(tmp_path, _cegis_like))
    payload = replay_to_json(replay)
    assert json.loads(json.dumps(payload)) == payload
    assert payload["wall_ms"] == 150.0
    assert payload["trace_id"] == "fixed"
    assert set(payload["phases"]) == {
        "generate_samples",
        "learn",
        "verify",
        UNTRACED,
    }


def test_empty_trace_is_not_an_error(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    replay = load_trace(path)
    assert replay.spans == {}
    assert replay.wall_ms == 0.0
    assert "no phase spans" in render_phase_table(replay)
    assert render_flamegraph(replay) == "empty trace"
