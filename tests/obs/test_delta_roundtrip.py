"""Counter/metric delta round-trips across fork and spawn workers.

The parallel driver's aggregation contract: each worker snapshots its
process-local registries before the batch, ships ``delta_since`` after,
and the parent folds the deltas -- summing counter increments and
``merge_delta``-ing metric deltas in batch order.  These tests drive
real child processes under every available start method and assert the
folded totals equal exactly the work the children performed, even when
a fork child inherits warm parent registries.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs.metrics import GLOBAL_METRICS, merge_delta
from repro.smt.stats import GLOBAL_COUNTERS

START_METHODS = [
    m for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


def _worker(index: int, conn) -> None:
    """Child entry: do known registry work, ship the deltas back.

    Top-level on purpose -- spawn pickles the callable by qualified
    name, so it must be importable from the ``tests`` package.
    """
    counters_before = GLOBAL_COUNTERS.snapshot()
    metrics_before = GLOBAL_METRICS.snapshot()

    GLOBAL_COUNTERS.checks += index + 1
    GLOBAL_COUNTERS.pivots += 10
    GLOBAL_METRICS.counter("roundtrip.jobs").inc(index + 1)
    GLOBAL_METRICS.histogram("roundtrip.size").record(float(index))

    conn.send(
        (
            GLOBAL_COUNTERS.delta_since(counters_before),
            GLOBAL_METRICS.delta_since(metrics_before),
        )
    )
    conn.close()


@pytest.mark.parametrize("method", START_METHODS)
def test_delta_roundtrip(method):
    ctx = multiprocessing.get_context(method)

    # Pre-warm the parent registries.  A fork child inherits this
    # warmth; its per-child snapshot must fence it out of the delta.
    GLOBAL_COUNTERS.checks += 100
    GLOBAL_METRICS.counter("roundtrip.jobs").inc(100)

    workers = 3
    pipes = [ctx.Pipe(duplex=False) for _ in range(workers)]
    procs = [
        ctx.Process(target=_worker, args=(i, child_end))
        for i, (_recv, child_end) in enumerate(pipes)
    ]
    for proc in procs:
        proc.start()
    deltas = [recv.recv() for recv, _child in pipes]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    counter_total: dict[str, int] = {}
    metric_total: dict = {}
    for counter_delta, metric_delta in deltas:
        for name, value in counter_delta.items():
            if value:
                counter_total[name] = counter_total.get(name, 0) + value
        merge_delta(metric_total, metric_delta)

    # Exactly the children's own work: sum(1..3) checks, 10 pivots
    # each, and no trace of the parent's 100-unit pre-warm.
    assert counter_total["checks"] == 6
    assert counter_total["pivots"] == 30
    assert counter_total.get("solvers_constructed", 0) == 0
    assert metric_total["counters"]["roundtrip.jobs"] == 6

    hist = metric_total["histograms"]["roundtrip.size"]
    assert hist["count"] == 3
    assert sorted(hist["values"]) == [0.0, 1.0, 2.0]
    assert hist["max"] == 2.0


@pytest.mark.parametrize("method", START_METHODS)
def test_fork_inherits_spawn_does_not(method):
    """The start methods differ in inherited warmth; deltas hide it."""
    ctx = multiprocessing.get_context(method)
    GLOBAL_COUNTERS.restarts += 7
    recv, child_end = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_snapshot_worker, args=(child_end,))
    proc.start()
    child_snapshot = recv.recv()
    proc.join(timeout=60)
    assert proc.exitcode == 0

    if method == "fork":
        # The fork child saw the parent's warm value...
        assert child_snapshot["restarts"] >= 7
    else:
        # ...while a spawn child re-imported a cold registry.
        assert child_snapshot["restarts"] == 0


def _snapshot_worker(conn) -> None:
    conn.send(GLOBAL_COUNTERS.snapshot())
    conn.close()
