"""Observability end to end: a real CEGIS run under a live tracer.

Runs the paper's motivating synthesis with a file tracer installed and
replays the trace, checking the invariants ``repro trace`` relies on:
every CEGIS phase shows up, counter deltas land on phase spans, and
the per-phase totals stay within the trace wall-clock.
"""

import json

from repro.core import synthesize
from repro.obs import install_file_tracer
from repro.obs.replay import attribution_rows, load_trace
from repro.predicates import Col, Column, Comparison, INTEGER, Lit, pand

A1 = Column("t", "a1", INTEGER)
A2 = Column("t", "a2", INTEGER)
B1 = Column("t", "b1", INTEGER)


def _motivating_pred():
    return pand(
        [
            Comparison(Col(A2) - Col(B1), "<", Lit.integer(20)),
            Comparison(
                Col(A1) - Col(A2), "<", (Col(A2) - Col(B1)) + Lit.integer(10)
            ),
            Comparison(Col(B1), "<", Lit.integer(0)),
        ]
    )


def test_traced_synthesis_replays_with_full_attribution(tmp_path):
    path = tmp_path / "cegis.jsonl"
    with install_file_tracer(path, trace_id="itest") as tracer:
        assert tracer.trace_id == "itest"
        outcome = synthesize(_motivating_pred(), {A2})
    assert outcome.is_valid

    replay = load_trace(path)
    assert replay.trace_id == "itest"
    roots = {root.name for root in replay.roots}
    assert "synthesize" in roots

    phases = replay.phase_totals()
    assert "generate_samples" in phases
    assert "learn" in phases
    assert "verify" in phases

    # Counter deltas ride on the phase spans: sample generation and
    # verification both drive the solver.
    assert phases["verify"]["counters"].get("checks", 0) > 0
    assert phases["generate_samples"]["counters"].get("checks", 0) > 0

    # Attribution sums exactly to wall-clock (residue row by design),
    # and no phase claims more than the whole run.
    rows = attribution_rows(replay)
    total = sum(row["total_ms"] for row in rows)
    assert abs(total - replay.wall_ms) < 1e-6
    assert all(row["total_ms"] <= replay.wall_ms + 1e-6 for row in rows)

    # The root span records the outcome for trace-only debugging.
    root = replay.roots[0]
    assert root.attrs["status"] == outcome.status
    assert root.attrs["iterations"] == outcome.iterations


def test_tracer_restored_and_file_complete_after_exit(tmp_path):
    from repro.obs.trace import NULL_TRACER, get_tracer

    path = tmp_path / "t.jsonl"
    with install_file_tracer(path):
        synthesize(_motivating_pred(), {B1})
    assert get_tracer() is NULL_TRACER
    lines = path.read_text().splitlines()
    assert all(json.loads(line) for line in lines)
    assert json.loads(lines[0])["type"] == "meta"


def test_smt_spans_flag_adds_per_check_spans(tmp_path):
    quiet = tmp_path / "quiet.jsonl"
    with install_file_tracer(quiet, smt_spans=False):
        synthesize(_motivating_pred(), {A2})
    verbose = tmp_path / "verbose.jsonl"
    with install_file_tracer(verbose, smt_spans=True):
        synthesize(_motivating_pred(), {A2})
    quiet_names = {span.name for span in load_trace(quiet).spans.values()}
    verbose_names = {span.name for span in load_trace(verbose).spans.values()}
    assert "smt.check" not in quiet_names
    assert "smt.check" in verbose_names
