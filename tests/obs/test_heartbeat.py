"""Heartbeat plane: board, channel, emitter and the parent-side fold."""

import queue

from repro.obs.heartbeat import (
    BEACON_VERSION,
    BeaconChannel,
    HeartbeatEmitter,
    RunModel,
    StatusBoard,
)


class TestStatusBoard:
    def test_post_overwrites_only_given_fields(self):
        board = StatusBoard()
        board.post(query=3, cell="a/SIA", phase="cell")
        board.post(phase="ground_truth")
        state = board.drain()
        assert state["query"] == 3
        assert state["cell"] == "a/SIA"
        assert state["phase"] == "ground_truth"

    def test_reset_clears_position(self):
        board = StatusBoard()
        board.post(query=1, cell="x", phase="cell", cells_done=4,
                   deadline_ms=100.0)
        board.reset()
        assert board.drain() == {
            "query": None, "cell": None, "phase": None,
            "cells_done": 0, "deadline_ms": None,
        }


class TestBeaconChannel:
    def test_post_drain_roundtrip(self):
        channel = BeaconChannel()
        assert channel.post({"worker": 0, "seq": 1})
        assert channel.post({"worker": 0, "seq": 2})
        assert [b["seq"] for b in channel.drain()] == [1, 2]
        assert channel.drain() == []

    def test_post_never_blocks_on_full_queue(self):
        # Capacity-2 queue: the third post must return immediately,
        # report the drop, and count it -- telemetry never holds up
        # synthesis.
        channel = BeaconChannel(queue.Queue(maxsize=2))
        assert channel.post({"seq": 1})
        assert channel.post({"seq": 2})
        assert not channel.post({"seq": 3})
        assert channel.dropped == 1
        # Draining frees capacity; posting works again.
        assert len(channel.drain()) == 2
        assert channel.post({"seq": 4})


class TestHeartbeatEmitter:
    def _emitter(self, counters, **kwargs):
        channel = BeaconChannel()
        emitter = HeartbeatEmitter(
            7, channel, board=StatusBoard(),
            counter_source=lambda: dict(counters), **kwargs,
        )
        return emitter, channel

    def test_beat_ships_counter_deltas_not_totals(self):
        counters = {"checks": 10, "pivots": 0}
        emitter, channel = self._emitter(counters)
        counters["checks"] = 25
        counters["pivots"] = 3
        beacon = emitter.beat()
        assert beacon["counters"] == {"checks": 15, "pivots": 3}
        # No movement since the last beat: the delta is empty.
        assert emitter.beat()["counters"] == {}
        assert [b["seq"] for b in channel.drain()] == [1, 2]

    def test_beat_carries_board_and_version(self):
        emitter, _ = self._emitter({})
        emitter.board.post(query=2, cell="b/DT", phase="cell")
        beacon = emitter.beat()
        assert beacon["type"] == "beacon"
        assert beacon["v"] == BEACON_VERSION
        assert beacon["worker"] == 7
        assert beacon["query"] == 2
        assert beacon["cell"] == "b/DT"

    def test_stop_posts_a_final_beacon_without_start(self):
        emitter, channel = self._emitter({})
        emitter.stop()
        assert len(channel.drain()) == 1

    def test_thread_lifecycle_beats_and_stops(self):
        emitter, channel = self._emitter({}, interval_ms=5.0)
        emitter.start()
        try:
            deadline = 200
            while not channel.drain() and deadline:
                deadline -= 1
                emitter._stop.wait(0.005)
        finally:
            emitter.stop()
        assert emitter._thread is None


class TestRunModel:
    def test_fold_accumulates_and_snapshot_rolls_up(self):
        model = RunModel(interval_ms=100.0)
        model.fold({"worker": 0, "counters": {"checks": 5}, "query": 1,
                    "cell": "a/SIA", "phase": "cell", "cells_done": 2},
                   t=1.0)
        model.fold({"worker": 0, "counters": {"checks": 3}}, t=1.1)
        model.fold({"worker": 1, "counters": {"pivots": 7}}, t=1.1)
        snap = model.snapshot()
        assert snap["beacons"] == 3
        assert snap["counters"] == {"checks": 8, "pivots": 7}
        assert snap["workers"][0]["beacons"] == 2
        assert snap["workers"][1]["beacons"] == 1
        assert snap["silence_flags"] == 0

    def test_silence_flagged_within_two_intervals(self):
        # interval 100ms, threshold 2 intervals: a worker silent for
        # >200ms of parent-clock time is flagged exactly once.
        model = RunModel(interval_ms=100.0, silence_intervals=2)
        model.register(0, 0.0)
        model.register(1, 0.0)
        model.fold({"worker": 0}, t=0.15)
        # Just inside the horizon for worker 1: nothing flagged yet.
        assert model.flag_silent(0.2) == []
        # Past two intervals since worker 1's registration.
        assert model.flag_silent(0.21) == [1]
        # Already flagged: not re-reported while still silent.
        assert model.flag_silent(5.0) == [0]
        assert model.silent == [0, 1]
        assert model.silence_flags == 2

    def test_beacon_clears_silence_and_rearms_flag(self):
        model = RunModel(interval_ms=100.0, silence_intervals=2)
        model.register(3, 0.0)
        assert model.flag_silent(1.0) == [3]
        model.fold({"worker": 3}, t=1.05)
        assert model.silent == []
        # Silence re-flagged after the worker goes quiet again.
        assert model.flag_silent(2.0) == [3]
        assert model.silence_flags == 2

    def test_fold_uses_arrival_time_not_beacon_clock(self):
        # Worker perf-counter epochs are arbitrary per process; a huge
        # beacon "t" must not postpone silence detection.
        model = RunModel(interval_ms=100.0, silence_intervals=2)
        model.fold({"worker": 0, "t": 99999.0}, t=1.0)
        assert model.flag_silent(1.3) == [0]

    def test_register_does_not_reset_live_worker(self):
        model = RunModel(interval_ms=100.0)
        model.fold({"worker": 0}, t=5.0)
        model.register(0, 0.0)
        assert model.flag_silent(5.1) == []
