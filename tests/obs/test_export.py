"""Metrics exporters: snapshot shape, Prometheus text, HTTP endpoint."""

import json
import threading
import urllib.request

import pytest

from repro.obs.export import MetricsServer, metrics_snapshot, prometheus_text
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("solve.calls").inc(3)
    timer = registry.timer("phase.learn")
    timer.record(10.0)
    timer.record(20.0)
    registry.gauge("bench.worker_utilization").set(0.9)
    return registry


class TestSnapshot:
    def test_snapshot_has_counters_metrics_and_clock(self, registry):
        snap = metrics_snapshot(registry)
        assert "checks" in snap["counters"]
        assert snap["metrics"]["counters"]["solve.calls"] == 3
        assert snap["metrics"]["gauges"]["bench.worker_utilization"] == 0.9
        assert isinstance(snap["clock_s"], float)

    def test_snapshot_is_json_serializable(self, registry):
        json.dumps(metrics_snapshot(registry))


class TestPrometheusText:
    def test_renders_counters_gauges_and_summaries(self, registry):
        text = prometheus_text(metrics_snapshot(registry))
        assert "# TYPE sia_solve_calls_total counter" in text
        assert "sia_solve_calls_total 3" in text
        assert "sia_bench_worker_utilization 0.9" in text
        assert "sia_phase_learn_count 2" in text
        assert "sia_phase_learn_sum 30.0" in text
        assert 'sia_phase_learn{quantile="0.5"} 10.0' in text
        assert 'sia_phase_learn{quantile="0.95"} 20.0' in text
        assert "sia_clock_seconds" in text

    def test_dots_map_to_underscores_only(self, registry):
        text = prometheus_text(metrics_snapshot(registry))
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert all(ch.isalnum() or ch == "_" for ch in name), name

    def test_solver_counters_exported_with_prefix(self):
        text = prometheus_text()
        assert "sia_solver_checks_total" in text


class TestMetricsServer:
    @pytest.fixture
    def server(self):
        server = MetricsServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        thread.join(timeout=5.0)

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=5.0) as resp:
            return resp.status, resp.headers.get("Content-Type"), (
                resp.read().decode("utf-8")
            )

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        status, content_type, body = self._get(server, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "sia_solver_checks_total" in body

    def test_metrics_json_endpoint(self, server):
        status, content_type, body = self._get(server, "/metrics.json")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert "counters" in payload
        assert "metrics" in payload

    def test_healthz(self, server):
        status, _, body = self._get(server, "/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/nope")
        assert err.value.code == 404

    def test_port_zero_binds_ephemeral(self, server):
        assert server.port != 0
        assert str(server.port) in server.url
