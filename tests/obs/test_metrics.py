"""Metrics registry: summaries, retention cap, deltas, ordered merge."""

from repro.obs.clock import ManualClock, set_clock
from repro.obs.metrics import (
    MetricsRegistry,
    merge_delta,
    summarize_values,
)
from repro.obs.metrics import _VALUE_CAP


def test_counter_is_monotone():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(4)
    assert registry.counter("hits").value == 5


def test_histogram_summary_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for value in range(1, 101):  # 1..100
        histogram.record(float(value))
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["total"] == 5050.0
    assert summary["p50"] == 50.0
    assert summary["p95"] == 95.0
    assert summary["max"] == 100.0


def test_retention_cap_keeps_count_and_total_exact():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    for _ in range(_VALUE_CAP + 10):
        histogram.record(1.0)
    assert len(histogram.values) == _VALUE_CAP
    assert histogram.count == _VALUE_CAP + 10
    assert histogram.total == float(_VALUE_CAP + 10)


def test_timer_reads_the_injectable_clock():
    clock = ManualClock()
    previous = set_clock(clock)
    try:
        registry = MetricsRegistry()
        with registry.timer("t").time():
            clock.advance(0.125)
        assert registry.timer("t").summary()["max"] == 125.0
    finally:
        set_clock(previous)


def test_summarize_values_empty_and_observed_max():
    assert summarize_values([]) == {"p50": 0.0, "p95": 0.0, "max": 0.0}
    # observed max (exact past the cap) overrides the retained max
    assert summarize_values([1.0, 2.0], 9.0)["max"] == 9.0


def test_delta_since_only_reports_changes():
    registry = MetricsRegistry()
    registry.counter("a").inc(2)
    registry.timer("t").record(10.0)
    snap = registry.snapshot()
    registry.counter("a").inc(3)
    registry.counter("b").inc(1)
    registry.timer("t").record(20.0)
    delta = registry.delta_since(snap)
    assert delta["counters"] == {"a": 3, "b": 1}
    assert delta["timers"]["t"]["count"] == 1
    assert delta["timers"]["t"]["total"] == 20.0
    assert delta["timers"]["t"]["values"] == [20.0]


def test_delta_is_pure_json():
    import json

    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.histogram("h").record(1.5)
    delta = registry.delta_since({})
    assert json.loads(json.dumps(delta)) == delta


def test_merge_delta_is_order_dependent_and_additive():
    worker1 = {
        "counters": {"a": 1},
        "timers": {"t": {"count": 1, "total": 10.0, "values": [10.0], "max": 10.0}},
        "histograms": {},
    }
    worker2 = {
        "counters": {"a": 2, "b": 5},
        "timers": {"t": {"count": 2, "total": 7.0, "values": [3.0, 4.0], "max": 4.0}},
        "histograms": {},
    }
    total: dict = {}
    merge_delta(total, worker1)
    merge_delta(total, worker2)
    assert total["counters"] == {"a": 3, "b": 5}
    assert total["timers"]["t"]["count"] == 3
    assert total["timers"]["t"]["total"] == 17.0
    assert total["timers"]["t"]["values"] == [10.0, 3.0, 4.0]
    assert total["timers"]["t"]["max"] == 10.0
    # Same deltas, opposite order: same totals, different value order.
    other: dict = {}
    merge_delta(other, worker2)
    merge_delta(other, worker1)
    assert other["timers"]["t"]["values"] == [3.0, 4.0, 10.0]
    assert other["counters"] == total["counters"]
    assert other["timers"]["t"]["count"] == total["timers"]["t"]["count"]


def test_reset_clears_every_table():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.timer("t").record(1.0)
    registry.histogram("h").record(2.0)
    registry.gauge("g").set(0.5)
    registry.reset()
    assert registry.summary() == {
        "counters": {}, "timers": {}, "histograms": {}, "gauges": {},
    }


def test_gauge_is_last_write_wins_and_rides_deltas():
    """Gauges report state, not events: deltas carry only gauges
    *written* since the snapshot (tracked by write version, so even a
    rewrite of the same value ships), and merging is last-write-wins
    in merge order."""
    registry = MetricsRegistry()
    before = registry.snapshot()
    gauge = registry.gauge("pool.utilization")
    gauge.set(0.25)
    gauge.set(0.75)
    assert registry.gauge("pool.utilization") is gauge
    assert registry.summary()["gauges"] == {"pool.utilization": 0.75}
    delta = registry.delta_since(before)
    assert delta["gauges"] == {"pool.utilization": 0.75}
    # Not written since this snapshot -> absent from the next delta.
    after = registry.snapshot()
    assert registry.delta_since(after)["gauges"] == {}
    # Rewriting the same value still counts as a write.
    gauge.set(0.75)
    assert registry.delta_since(after)["gauges"] == {"pool.utilization": 0.75}


def test_gauge_delta_merge_is_last_write_wins():
    total: dict = {}
    merge_delta(total, {"gauges": {"g": 0.25}})
    merge_delta(total, {"gauges": {"g": 0.5}, "counters": {"c": 1}})
    merge_delta(total, {"gauges": {}})
    assert total["gauges"] == {"g": 0.5}
    assert total["counters"] == {"c": 1}
