"""Tests for the TPC-H data generator."""

import datetime as dt

import numpy as np
import pytest

from repro.predicates import date_to_days
from repro.tpch import BASE_ROWS, TPCH_SCHEMA, generate_catalog


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(0.01, seed=7)


def test_all_tables_present(catalog):
    for name in TPCH_SCHEMA:
        assert name in catalog


def test_cardinalities(catalog):
    assert catalog.get("orders").num_rows == int(BASE_ROWS["orders"] * 0.01)
    assert catalog.get("customer").num_rows == int(BASE_ROWS["customer"] * 0.01)
    assert catalog.get("region").num_rows == 5
    assert catalog.get("nation").num_rows == 25
    lineitem = catalog.get("lineitem").num_rows
    orders = catalog.get("orders").num_rows
    assert 1 * orders <= lineitem <= 7 * orders


def test_schema_matches_columns(catalog):
    for name in TPCH_SCHEMA:
        table = catalog.get(name)
        assert set(table.columns) == set(TPCH_SCHEMA[name])


def test_orderdate_range(catalog):
    dates = catalog.get("orders").columns["o_orderdate"]
    assert dates.min() >= date_to_days(dt.date(1992, 1, 1))
    assert dates.max() <= date_to_days(dt.date(1998, 8, 2))


def test_lineitem_date_relationships(catalog):
    lineitem = catalog.get("lineitem")
    orders = catalog.get("orders")
    order_dates = dict(
        zip(orders.columns["o_orderkey"].tolist(), orders.columns["o_orderdate"].tolist())
    )
    ship = lineitem.columns["l_shipdate"]
    commit = lineitem.columns["l_commitdate"]
    receipt = lineitem.columns["l_receiptdate"]
    okeys = lineitem.columns["l_orderkey"]
    odates = np.array([order_dates[k] for k in okeys.tolist()])
    # dbgen invariants.
    assert ((ship - odates) >= 1).all()
    assert ((ship - odates) <= 121).all()
    assert ((commit - odates) >= 30).all()
    assert ((commit - odates) <= 90).all()
    assert ((receipt - ship) >= 1).all()
    assert ((receipt - ship) <= 30).all()


def test_lineitem_linenumbers(catalog):
    lineitem = catalog.get("lineitem")
    okeys = lineitem.columns["l_orderkey"]
    linenos = lineitem.columns["l_linenumber"]
    # Line numbers restart at 1 per order and increment.
    restart = np.flatnonzero(np.diff(okeys) != 0) + 1
    assert (linenos[restart] == 1).all()
    assert linenos[0] == 1


def test_quantity_and_prices(catalog):
    lineitem = catalog.get("lineitem")
    qty = lineitem.columns["l_quantity"]
    assert qty.min() >= 1 and qty.max() <= 50
    disc = lineitem.columns["l_discount"]
    assert disc.min() >= 0.0 and disc.max() <= 0.10


def test_determinism():
    c1 = generate_catalog(0.002, seed=3)
    c2 = generate_catalog(0.002, seed=3)
    a = c1.get("lineitem").columns["l_shipdate"]
    b = c2.get("lineitem").columns["l_shipdate"]
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    c1 = generate_catalog(0.002, seed=3)
    c2 = generate_catalog(0.002, seed=4)
    a = c1.get("lineitem").columns["l_shipdate"]
    b = c2.get("lineitem").columns["l_shipdate"]
    assert len(a) != len(b) or not np.array_equal(a, b)


def test_foreign_keys_resolve(catalog):
    orders = catalog.get("orders")
    n_cust = catalog.get("customer").num_rows
    assert orders.columns["o_custkey"].min() >= 1
    assert orders.columns["o_custkey"].max() <= n_cust
    ps = catalog.get("partsupp")
    assert ps.columns["ps_partkey"].max() <= catalog.get("part").num_rows
