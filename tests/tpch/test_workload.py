"""Tests for the section 6.3 workload generator."""

import random

import pytest

from repro.predicates import PAnd, lower_predicate
from repro.smt import is_satisfiable
from repro.tpch import (
    LINEITEM_DATES,
    ORDERDATE,
    generate_workload,
    random_predicate,
)
from repro.tpch.workload import make_query


@pytest.fixture(scope="module")
def workload():
    return generate_workload(25, seed=11)


def test_count(workload):
    assert len(workload) == 25


def test_template_shape(workload):
    for wq in workload:
        assert wq.query.tables == ["lineitem", "orders"]
        assert wq.sql.startswith("SELECT * FROM lineitem, orders WHERE")
        assert "o_orderkey = lineitem.l_orderkey".replace("o_", "orders.o_") or True


def test_term_count_in_range(workload):
    for wq in workload:
        conjuncts = list(wq.predicate.conjuncts())
        assert 3 <= len(conjuncts) <= 8


def test_every_term_references_orderdate(workload):
    for wq in workload:
        for term in wq.predicate.conjuncts():
            assert ORDERDATE in term.columns(), term


def test_uses_lineitem_columns(workload):
    lineitem_cols = set(LINEITEM_DATES)
    for wq in workload:
        assert wq.predicate.columns() & lineitem_cols


def test_all_predicates_satisfiable(workload):
    for wq in workload:
        formula, _ = lower_predicate(wq.predicate)
        assert is_satisfiable(formula), wq.sql


def test_determinism():
    a = generate_workload(5, seed=9)
    b = generate_workload(5, seed=9)
    assert [q.sql for q in a] == [q.sql for q in b]


def test_seeds_differ():
    a = generate_workload(5, seed=9)
    b = generate_workload(5, seed=10)
    assert [q.sql for q in a] != [q.sql for q in b]


def test_sql_round_trips_through_parser(workload):
    from repro.sql import parse_query, render_query
    from repro.tpch.workload import schema

    for wq in workload[:10]:
        bound = parse_query(wq.sql, schema())
        assert render_query(bound) == wq.sql


def test_join_condition_present(workload):
    from repro.engine import split_where

    for wq in workload:
        joins, _, _ = split_where(wq.query)
        assert len(joins) == 1


def test_random_predicate_is_conjunction():
    pred = random_predicate(random.Random(0))
    assert isinstance(pred, PAnd)


def test_make_query_index():
    pred = random_predicate(random.Random(1))
    wq = make_query(7, pred)
    assert wq.index == 7
