"""Tests for the TPC-H query library plus the new SQL clauses
(aggregates in SELECT, ORDER BY, LIMIT)."""

import pytest

from repro.engine import build_plan, execute
from repro.errors import TypeCheckError
from repro.predicates import Column, DOUBLE, INTEGER
from repro.sql import parse_query, render_query
from repro.tpch import generate_catalog
from repro.tpch.queries import all_queries, get_query


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(0.004, seed=2)


def test_library_lookup():
    query = get_query("q6_forecast_revenue")
    assert "SUM(l_extendedprice)" in query.sql
    with pytest.raises(KeyError):
        get_query("q99")
    assert len(all_queries()) >= 6


def test_all_library_queries_parse_and_run(catalog):
    for library_query in all_queries():
        bound = parse_query(library_query.sql, catalog.schema())
        relation, stats = execute(build_plan(bound), catalog)
        assert relation.num_rows >= 0
        assert stats.elapsed_ms >= 0


def test_q6_global_aggregate(catalog):
    bound = parse_query(get_query("q6_forecast_revenue").sql, catalog.schema())
    relation, _ = execute(build_plan(bound), catalog)
    assert relation.num_rows == 1
    count = relation.column(Column("__agg__", "count", INTEGER))[0]
    total = relation.column(
        Column("__agg__", "sum_l_extendedprice", DOUBLE)
    )[0]
    # Cross-check with a direct numpy computation.
    lineitem = catalog.get("lineitem")
    from repro.predicates import date_to_days
    import datetime as dt

    ship = lineitem.columns["l_shipdate"]
    disc = lineitem.columns["l_discount"]
    qty = lineitem.columns["l_quantity"]
    price = lineitem.columns["l_extendedprice"]
    mask = (
        (ship >= date_to_days(dt.date(1994, 1, 1)))
        & (ship < date_to_days(dt.date(1995, 1, 1)))
        & (disc >= 0.05)
        & (disc <= 0.07)
        & (qty < 24)
    )
    assert count == int(mask.sum())
    assert total == pytest.approx(float(price[mask].sum()))


def test_q1_group_by_order(catalog):
    bound = parse_query(get_query("q1_pricing_summary").sql, catalog.schema())
    relation, _ = execute(build_plan(bound), catalog)
    keys = relation.column(Column("lineitem", "l_linenumber", INTEGER))
    assert list(keys) == sorted(keys)
    assert 1 <= relation.num_rows <= 7


def test_q3_limit(catalog):
    bound = parse_query(get_query("q3_shipping_priority").sql, catalog.schema())
    relation, _ = execute(build_plan(bound), catalog)
    assert relation.num_rows <= 10


def test_order_by_desc(catalog):
    sql = (
        "SELECT l_orderkey, COUNT(*) FROM lineitem GROUP BY l_orderkey "
        "ORDER BY l_orderkey DESC LIMIT 5"
    )
    bound = parse_query(sql, catalog.schema())
    relation, _ = execute(build_plan(bound), catalog)
    keys = relation.column(Column("lineitem", "l_orderkey", INTEGER)).tolist()
    assert keys == sorted(keys, reverse=True)
    assert len(keys) == 5


def test_render_query_with_new_clauses(catalog):
    sql = (
        "SELECT l_linenumber, COUNT(*), SUM(l_quantity) FROM lineitem "
        "WHERE l_quantity < 10 GROUP BY l_linenumber "
        "ORDER BY l_linenumber DESC LIMIT 3"
    )
    bound = parse_query(sql, catalog.schema())
    rendered = render_query(bound)
    assert "COUNT(*)" in rendered
    assert "SUM(lineitem.l_quantity)" in rendered
    assert rendered.endswith("LIMIT 3")
    rebound = parse_query(rendered, catalog.schema())
    assert render_query(rebound) == rendered


def test_non_grouped_projection_rejected(catalog):
    sql = "SELECT l_orderkey, COUNT(*) FROM lineitem GROUP BY l_linenumber"
    with pytest.raises(TypeCheckError):
        parse_query(sql, catalog.schema())


def test_rewritable_q12_actually_rewrites(catalog):
    from repro.core import SiaConfig
    from repro.rewrite import rewrite_query

    library_query = get_query("q12_shipping_modes")
    bound = parse_query(library_query.sql, catalog.schema())
    result = rewrite_query(bound, "lineitem", SiaConfig(max_iterations=6))
    assert result.succeeded
    rel_o, _ = execute(build_plan(bound), catalog)
    rel_r, _ = execute(build_plan(result.rewritten), catalog)
    count_col = Column("__agg__", "count", INTEGER)
    assert rel_o.column(count_col)[0] == rel_r.column(count_col)[0]
