"""Tests for the linear SVM trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import train_linear_svm


def test_rejects_bad_shapes():
    with pytest.raises(ValueError):
        train_linear_svm(np.zeros(3), np.zeros((1, 3)))
    with pytest.raises(ValueError):
        train_linear_svm(np.zeros((0, 2)), np.zeros((1, 2)))
    with pytest.raises(ValueError):
        train_linear_svm(np.zeros((1, 2)), np.zeros((1, 3)))


def test_no_negatives_accepts_everything():
    model = train_linear_svm(np.array([[1.0, 2.0]]), np.zeros((0, 2)))
    assert model.predict(np.array([[100.0, -100.0]]))[0]


def test_separates_1d():
    pos = np.array([[3.0], [4.0], [10.0]])
    neg = np.array([[-1.0], [0.0], [1.0]])
    model = train_linear_svm(pos, neg)
    assert model.predict(pos).all()
    assert not model.predict(neg).any()


def test_separates_2d_diagonal():
    rng = np.random.default_rng(42)
    pos = rng.normal(0, 1, size=(40, 2)) + np.array([3.0, 3.0])
    neg = rng.normal(0, 1, size=(40, 2)) - np.array([3.0, 3.0])
    model = train_linear_svm(pos, neg)
    assert model.predict(pos).mean() > 0.95
    assert model.predict(neg).mean() < 0.05


def test_margin_direction():
    # TRUE iff x1 - x2 > 5, cleanly separated.
    pos = np.array([[10.0, 1.0], [20.0, 5.0], [8.0, 1.0]])
    neg = np.array([[1.0, 1.0], [5.0, 5.0], [0.0, 10.0]])
    model = train_linear_svm(pos, neg)
    assert model.weights[0] > 0
    assert model.weights[1] < model.weights[0]


def test_deterministic_given_seed():
    pos = np.array([[3.0, 1.0], [4.0, 2.0]])
    neg = np.array([[-3.0, 0.0], [-4.0, 1.0]])
    m1 = train_linear_svm(pos, neg, seed=7)
    m2 = train_linear_svm(pos, neg, seed=7)
    assert np.allclose(m1.weights, m2.weights)
    assert m1.bias == m2.bias


def test_not_linearly_separable_still_returns_model():
    # XOR-ish pattern: no linear separator exists.
    pos = np.array([[1.0, 1.0], [-1.0, -1.0]])
    neg = np.array([[1.0, -1.0], [-1.0, 1.0]])
    model = train_linear_svm(pos, neg)
    assert model.weights.shape == (2,)
    # At most half of each class can be classified correctly by a line
    # through this configuration; just check nothing blew up.
    assert np.isfinite(model.decision(pos)).all()


def test_large_scale_features():
    pos = np.array([[1e6, 2.0], [2e6, 1.0]])
    neg = np.array([[-1e6, 2.0], [-2e6, 1.0]])
    model = train_linear_svm(pos, neg)
    assert model.predict(pos).all()
    assert not model.predict(neg).any()


@settings(max_examples=25, deadline=None)
@given(
    threshold=st.integers(min_value=-20, max_value=20),
    seed=st.integers(min_value=0, max_value=100),
)
def test_learns_threshold_property(threshold, seed):
    rng = np.random.default_rng(seed)
    xs = rng.integers(-60, 60, size=40).astype(np.float64)
    pos = xs[xs > threshold + 2].reshape(-1, 1)
    neg = xs[xs < threshold - 2].reshape(-1, 1)
    if len(pos) == 0 or len(neg) == 0:
        return
    model = train_linear_svm(pos, neg)
    assert model.predict(pos).all()
    assert not model.predict(neg).any()
