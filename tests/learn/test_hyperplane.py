"""Tests for rationalization and hyperplane predicates."""

import datetime as dt
from fractions import Fraction

import numpy as np
import pytest

from repro.errors import SynthesisError
from repro.learn import (
    DisjunctivePredicate,
    Hyperplane,
    hyperplane_from_floats,
    rationalize_weights,
)
from repro.predicates import (
    DATE,
    INTEGER,
    Col,
    Column,
    Comparison,
    Lit,
    LinearizationContext,
    eval_pred_py,
    lower_predicate,
    pand,
)
from repro.smt import Var, get_model, is_satisfiable, conj, negate


def test_rationalize_simple():
    weights, bias = rationalize_weights(np.array([0.5, -0.25]), 1.0)
    assert weights == [2, -1]
    assert bias == 4


def test_rationalize_snaps_noise_to_zero():
    weights, bias = rationalize_weights(np.array([1.0, 1e-12]), 0.0)
    assert weights == [1, 0]
    assert bias == 0


def test_rationalize_gcd_reduction():
    weights, bias = rationalize_weights(np.array([4.0, 8.0]), 12.0)
    assert weights == [1, 2]
    assert bias == 3


def test_rationalize_all_zero():
    weights, bias = rationalize_weights(np.array([0.0, 0.0]), 0.0)
    assert weights == [0, 0]
    assert bias == 0


def test_hyperplane_from_floats_degenerate():
    assert hyperplane_from_floats([Var("x")], np.array([0.0]), 0.0) is None


def test_hyperplane_rejects_all_zero_weights():
    with pytest.raises(SynthesisError):
        Hyperplane(((Var("x"), 0),), 5)


def test_hyperplane_formula_and_accepts():
    x, y = Var("x"), Var("y")
    plane = Hyperplane(((x, 2), (y, 1)), 50)  # 2x + y + 50 > 0
    assert plane.accepts({x: 0, y: 0})
    assert not plane.accepts({x: -30, y: 0})
    formula = plane.formula()
    assert is_satisfiable(formula)
    model = get_model(formula)
    assert plane.accepts({x: model.value(x), y: model.value(y)})


def test_hyperplane_formula_matches_accepts_on_grid():
    x, y = Var("x"), Var("y")
    plane = Hyperplane(((x, 1), (y, -1)), 29)  # a1 - a2 + 29 > 0 (paper fig 4)
    from repro.smt import LinExpr, compare

    for xv in range(-40, 10, 7):
        for yv in range(-40, 10, 7):
            fixed = conj(
                [
                    compare(LinExpr.var(x), "=", LinExpr.const_expr(xv)),
                    compare(LinExpr.var(y), "=", LinExpr.const_expr(yv)),
                ]
            )
            assert is_satisfiable(conj([plane.formula(), fixed])) == plane.accepts(
                {x: xv, y: yv}
            )


def test_hyperplane_to_pred_integer_columns():
    a = Column("t", "a", INTEGER)
    b = Column("t", "b", INTEGER)
    base = pand(
        [
            Comparison(Col(a), "<", Lit.integer(10)),
            Comparison(Col(b), ">", Lit.integer(0)),
        ]
    )
    _, ctx = lower_predicate(base)
    plane = Hyperplane(((ctx.var(a), 2), (ctx.var(b), -3)), 7)
    pred = plane.to_pred(ctx)
    # 2a - 3b + 7 > 0 at (a,b)=(1,1): 6 > 0 -> True; (0,3): -2 -> False
    assert eval_pred_py(pred, {a: 1, b: 1}) is True
    assert eval_pred_py(pred, {a: 0, b: 3}) is False


def test_hyperplane_to_pred_date_columns_roundtrip():
    ship = Column("lineitem", "l_shipdate", DATE)
    commit = Column("lineitem", "l_commitdate", DATE)
    base = pand(
        [
            Comparison(Col(ship), "<", Lit.date("1993-06-01")),
            Comparison(Col(commit), ">", Lit.date("1993-01-01")),
        ]
    )
    _, ctx = lower_predicate(base)
    plane = Hyperplane(((ctx.var(ship), 1), (ctx.var(commit), -1)), 29)
    pred = plane.to_pred(ctx)
    # In var space: ship_days - commit_days + 29 > 0.
    row = {ship: dt.date(1993, 5, 1), commit: dt.date(1993, 5, 10)}
    # diff = -9 days; -9 + 29 = 20 > 0
    assert eval_pred_py(pred, row) is True
    row2 = {ship: dt.date(1993, 3, 1), commit: dt.date(1993, 5, 10)}
    # diff = -70; -70 + 29 < 0
    assert eval_pred_py(pred, row2) is False


def test_to_pred_consistent_with_formula():
    """The SQL rendering and the SMT formula agree pointwise."""
    a = Column("t", "a", INTEGER)
    b = Column("t", "b", INTEGER)
    base = Comparison(Col(a) - Col(b), "<", Lit.integer(5))
    _, ctx = lower_predicate(base)
    plane = Hyperplane(((ctx.var(a), 3), (ctx.var(b), 2)), -4)
    pred = plane.to_pred(ctx)
    for av in (-5, 0, 1, 7):
        for bv in (-5, 0, 2):
            assert (eval_pred_py(pred, {a: av, b: bv}) is True) == plane.accepts(
                {ctx.var(a): av, ctx.var(b): bv}
            )


def test_disjunction():
    x = Var("x")
    p1 = Hyperplane(((x, 1),), -10)  # x > 10
    p2 = Hyperplane(((x, -1),), -10)  # x < -10
    dis = DisjunctivePredicate((p1, p2))
    assert dis.accepts({x: 20})
    assert dis.accepts({x: -20})
    assert not dis.accepts({x: 0})
    assert is_satisfiable(dis.formula())
    assert not is_satisfiable(
        conj([dis.formula(), negate(p1.formula()), negate(p2.formula())])
    )
    assert dis.variables == (x,)


def test_disjunction_requires_planes():
    with pytest.raises(SynthesisError):
        DisjunctivePredicate(())


def test_str_rendering():
    x, y = Var("t.a"), Var("t.b")
    plane = Hyperplane(((x, 2), (y, 1)), 50)
    assert str(plane) == "2*a + b + 50 > 0"
