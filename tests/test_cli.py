"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_rewrite_command(capsys):
    code = main(
        [
            "rewrite",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_shipdate - o_orderdate < 20 "
            "AND o_orderdate < DATE '1993-06-01'",
            "--table",
            "lineitem",
            "--iterations",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- synthesized" in out
    assert "l_shipdate" in out
    assert "SELECT * FROM lineitem, orders WHERE" in out


def test_rewrite_explain(capsys):
    code = main(
        [
            "rewrite",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_commitdate - o_orderdate < 30 "
            "AND o_orderdate < DATE '1995-01-01'",
            "--explain",
            "--iterations",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "HashJoin" in out
    assert "-- rewritten plan:" in out


def test_rewrite_nothing_to_synthesize(capsys):
    code = main(
        [
            "rewrite",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND o_orderdate < DATE '1994-01-01'",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no predicate synthesized" in out


def test_parse_error_reported(capsys):
    code = main(["rewrite", "SELEC broken"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_run_command(capsys):
    code = main(
        [
            "run",
            "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10",
            "--scale-factor",
            "0.002",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- plan:" in out
    assert "Aggregate" in out
    assert "1 rows" in out


def test_run_with_rewrite(capsys):
    code = main(
        [
            "run",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_shipdate - o_orderdate < 20 "
            "AND o_orderdate < DATE '1993-01-01'",
            "--scale-factor",
            "0.002",
            "--rewrite",
            "lineitem",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- synthesized:" in out
    assert "HashJoin" in out


def test_run_no_pushdown(capsys):
    code = main(
        [
            "run",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_quantity < 5 LIMIT 3",
            "--scale-factor",
            "0.002",
            "--no-pushdown",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "more rows" in out or "rows in" in out


def _write_demo_trace(tmp_path):
    import io

    from repro.obs.clock import ManualClock
    from repro.obs.trace import Tracer

    sink = io.StringIO()
    clock = ManualClock()
    tracer = Tracer(sink, trace_id="clitest", clock=clock)
    with tracer.span("synthesize"):
        with tracer.span("cegis.learn", phase="learn"):
            clock.advance(0.030)
        with tracer.span("cegis.verify", phase="verify"):
            clock.advance(0.010)
    path = tmp_path / "trace.jsonl"
    path.write_text(sink.getvalue())
    return path


def test_trace_command_renders_table_and_flamegraph(tmp_path, capsys):
    path = _write_demo_trace(tmp_path)
    code = main(["trace", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "learn" in out
    assert "verify" in out
    assert "wall-clock 40.0 ms" in out
    assert "synthesize" in out  # flamegraph root


def test_trace_command_json_output(tmp_path, capsys):
    import json

    path = _write_demo_trace(tmp_path)
    code = main(["trace", str(path), "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["trace_id"] == "clitest"
    assert payload["wall_ms"] == 40.0
    assert payload["phases"]["learn"]["total_ms"] == 30.0


def test_trace_command_missing_file(tmp_path, capsys):
    code = main(["trace", str(tmp_path / "nope.jsonl")])
    err = capsys.readouterr().err
    assert code == 2
    assert "error" in err


def test_trace_command_empty_trace(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    code = main(["trace", str(path)])
    err = capsys.readouterr().err
    assert code == 1
    assert "no spans" in err
