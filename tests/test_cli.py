"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_rewrite_command(capsys):
    code = main(
        [
            "rewrite",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_shipdate - o_orderdate < 20 "
            "AND o_orderdate < DATE '1993-06-01'",
            "--table",
            "lineitem",
            "--iterations",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- synthesized" in out
    assert "l_shipdate" in out
    assert "SELECT * FROM lineitem, orders WHERE" in out


def test_rewrite_explain(capsys):
    code = main(
        [
            "rewrite",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_commitdate - o_orderdate < 30 "
            "AND o_orderdate < DATE '1995-01-01'",
            "--explain",
            "--iterations",
            "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "HashJoin" in out
    assert "-- rewritten plan:" in out


def test_rewrite_nothing_to_synthesize(capsys):
    code = main(
        [
            "rewrite",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND o_orderdate < DATE '1994-01-01'",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no predicate synthesized" in out


def test_parse_error_reported(capsys):
    code = main(["rewrite", "SELEC broken"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_run_command(capsys):
    code = main(
        [
            "run",
            "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10",
            "--scale-factor",
            "0.002",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- plan:" in out
    assert "Aggregate" in out
    assert "1 rows" in out


def test_run_with_rewrite(capsys):
    code = main(
        [
            "run",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_shipdate - o_orderdate < 20 "
            "AND o_orderdate < DATE '1993-01-01'",
            "--scale-factor",
            "0.002",
            "--rewrite",
            "lineitem",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "-- synthesized:" in out
    assert "HashJoin" in out


def test_run_no_pushdown(capsys):
    code = main(
        [
            "run",
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_quantity < 5 LIMIT 3",
            "--scale-factor",
            "0.002",
            "--no-pushdown",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "more rows" in out or "rows in" in out
