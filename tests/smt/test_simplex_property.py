"""Additional property tests: delta-rationals and model concretization."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import LE, LT, Atom, LinExpr, REAL, Var
from repro.smt.simplex import (
    DeltaRational,
    Simplex,
    TheoryConflict,
    concrete_model,
)

fracs = st.fractions(min_value=-50, max_value=50, max_denominator=16)


@given(a=fracs, b=fracs, c=fracs, d=fracs)
def test_delta_rational_ordering_is_lexicographic(a, b, c, d):
    x = DeltaRational(a, b)
    y = DeltaRational(c, d)
    assert (x < y) == ((a, b) < (c, d))
    assert (x <= y) == ((a, b) <= (c, d))


@given(a=fracs, b=fracs, c=fracs, d=fracs, k=fracs)
def test_delta_rational_arithmetic(a, b, c, d, k):
    x = DeltaRational(a, b)
    y = DeltaRational(c, d)
    total = x + y
    assert total.real == a + c and total.k == b + d
    diff = x - y
    assert diff.real == a - c and diff.k == b - d
    scaled = x.scale(k)
    assert scaled.real == a * k and scaled.k == b * k


@settings(max_examples=50, deadline=None)
@given(
    bounds=st.lists(
        st.tuples(
            st.sampled_from(["<", "<="]),
            st.integers(min_value=-40, max_value=40),
            st.booleans(),  # upper or lower
        ),
        min_size=1,
        max_size=10,
    )
)
def test_concretized_models_satisfy_strict_bounds(bounds):
    """Whatever mix of strict/non-strict one-variable bounds is
    feasible, the concrete model (after substituting delta) satisfies
    every original constraint exactly."""
    x = Var("x", REAL)
    ex = LinExpr.var(x)
    simplex = Simplex()
    atoms = []
    try:
        for index, (op, value, is_upper) in enumerate(bounds):
            expr = ex - value if is_upper else value - ex
            atom = Atom(expr, LT if op == "<" else LE)
            atoms.append(atom)
            simplex.assert_atom(atom, index)
        assignment = simplex.check()
    except TheoryConflict:
        return
    model = concrete_model(
        assignment, [a.expr for a in atoms if a.op == LT]
    )
    for atom in atoms:
        value = atom.expr.evaluate({x: model[x]})
        assert atom.holds(value), (atom, model[x])


@settings(max_examples=30, deadline=None)
@given(
    uppers=st.lists(st.integers(-30, 30), min_size=1, max_size=5),
    lowers=st.lists(st.integers(-30, 30), min_size=1, max_size=5),
)
def test_interval_feasibility_matches_arithmetic(uppers, lowers):
    """x <= min(uppers) and x >= max(lowers): feasible iff they meet."""
    x = Var("x", REAL)
    ex = LinExpr.var(x)
    simplex = Simplex()
    try:
        for i, u in enumerate(uppers):
            simplex.assert_atom(Atom(ex - u, LE), ("u", i))
        for i, l in enumerate(lowers):
            simplex.assert_atom(Atom(l - ex, LE), ("l", i))
        simplex.check()
        feasible = True
    except TheoryConflict:
        feasible = False
    assert feasible == (max(lowers) <= min(uppers))
