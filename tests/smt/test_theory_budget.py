"""Stress/regression tests for branch-and-bound robustness."""

import pytest

from repro.smt import EQ, LE, LT, Atom, LinExpr, TheoryConflict, Var
from repro.smt.theory import SolverBudgetError, check_conjunction

X = Var("x")
Y = Var("y")
Z = Var("z")
ex, ey, ez = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(Z)


def test_deep_branching_does_not_recurse_out():
    """A thin sliver with no integer points forces a long branching
    walk; before the iterative rewrite this blew the recursion limit."""
    # 64x - 49y in (0.1, 0.9): rational-feasible, integer-infeasible
    # (64x - 49y is an integer).
    from fractions import Fraction

    constraints = [
        (Atom(LinExpr({X: 64, Y: -49}, Fraction(-9, 10)), LT), "hi"),
        (Atom(LinExpr({X: -64, Y: 49}, Fraction(1, 10)), LT), "lo"),
        (Atom(ex - 50, LE), "bx1"),
        (Atom(-ex - 50, LE), "bx2"),
        (Atom(ey - 50, LE), "by1"),
        (Atom(-ey - 50, LE), "by2"),
    ]
    # Integer-tightening folds this immediately or B&B proves it; either
    # way the answer is a conflict, never a crash.
    with pytest.raises(TheoryConflict):
        check_conjunction(constraints, max_nodes=100_000)


def test_budget_error_raised_not_wrong_answer():
    """With a tiny budget on a hard instance the solver must say
    'unknown' (SolverBudgetError), never 'unsat'."""
    constraints = [
        (Atom(LinExpr({X: 997, Y: -751, Z: 311}, -5), EQ), "eq"),
        (Atom(ex - 10**6, LE), "b1"),
        (Atom(-ex - 10**6, LE), "b2"),
        (Atom(ey - 10**6, LE), "b3"),
        (Atom(-ey - 10**6, LE), "b4"),
        (Atom(ez - 10**6, LE), "b5"),
        (Atom(-ez - 10**6, LE), "b6"),
    ]
    try:
        model = check_conjunction(constraints, max_nodes=3)
    except SolverBudgetError:
        return  # acceptable: unknown
    except TheoryConflict:  # pragma: no cover
        pytest.fail("budget exhaustion must not be reported as unsat")
    # If it solved within 3 nodes, the model must be genuine.
    value = 997 * model[X] - 751 * model[Y] + 311 * model[Z]
    assert value == 5


def test_branch_core_is_subset_of_inputs():
    constraints = [
        (Atom(3 - ex * 2, LE), "lo"),
        (Atom(ex * 2 - LinExpr.const_expr(0) - 3, LE), "hi"),  # 2x <= 3
        (Atom(ey, LE), "noise"),
    ]
    with pytest.raises(TheoryConflict) as info:
        check_conjunction(constraints)
    assert info.value.core <= {"lo", "hi", "noise"}
    assert "lo" in info.value.core and "hi" in info.value.core


def test_many_integer_vars_feasible():
    variables = [Var(f"v{i}") for i in range(12)]
    constraints = []
    for i, var in enumerate(variables):
        expr = LinExpr.var(var)
        constraints.append((Atom(expr - (i + 10), LE), f"ub{i}"))
        constraints.append((Atom((i + 1) - expr, LE), f"lb{i}"))
    # Chain couplings v0 <= v1 <= ... <= v11.
    for i in range(11):
        coupling = LinExpr.var(variables[i]) - LinExpr.var(variables[i + 1])
        constraints.append((Atom(coupling, LE), f"c{i}"))
    model = check_conjunction(constraints)
    values = [model[v] for v in variables]
    assert values == sorted(values)
    for i, value in enumerate(values):
        assert i + 1 <= value <= i + 10
