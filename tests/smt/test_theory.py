"""Unit tests for integer tightening and branch-and-bound."""

from fractions import Fraction

import pytest

from repro.smt import EQ, LE, LT, Atom, LinExpr, REAL, TheoryConflict, Var
from repro.smt.theory import check_conjunction, tighten

X = Var("x")
Y = Var("y")
R = Var("r", REAL)
ex = LinExpr.var(X)
ey = LinExpr.var(Y)
er = LinExpr.var(R)


def test_tighten_strict_to_nonstrict():
    # x < 3  =>  x <= 2, represented as x - 2 <= 0
    atom = tighten(Atom(ex - 3, LT))
    assert atom.op == LE
    assert atom.expr == ex - 2


def test_tighten_fractional_bound():
    # 2x <= 5  =>  x <= 2
    atom = tighten(Atom(ex * 2 - 5, LE))
    assert atom.expr == ex - 2


def test_tighten_divides_content():
    # 4x - 6y <= 7  =>  2x - 3y <= 3
    atom = tighten(Atom(ex * 4 - ey * 6 - 7, LE))
    assert atom.expr.coeff(X) == 2
    assert atom.expr.coeff(Y) == -3
    assert atom.expr.const == -3


def test_tighten_infeasible_equality():
    # 2x = 1 has no integer solution.
    assert tighten(Atom(ex * 2 - 1, EQ)) is False


def test_tighten_feasible_equality():
    atom = tighten(Atom(ex * 2 - ey * 4 - 6, EQ))
    assert atom.expr.coeff(X) == 1
    assert atom.expr.coeff(Y) == -2
    assert atom.expr.const == -3


def test_tighten_leaves_reals_alone():
    atom = Atom(er - Fraction(1, 2), LT)
    assert tighten(atom) == atom


def test_tighten_constant_folds():
    assert tighten(Atom(LinExpr.const_expr(-1), LE)) is True
    assert tighten(Atom(LinExpr.const_expr(1), LE)) is False


def test_integer_model():
    model = check_conjunction([(Atom(ex * 2 - 5, LE), "a"), (Atom(1 - ex, LE), "b")])
    assert model[X].denominator == 1
    assert 1 <= model[X] <= 2


def test_branch_and_bound_finds_integer_point():
    # 3 <= 2x <= 3.9 has rational but no integer solutions.
    with pytest.raises(TheoryConflict):
        check_conjunction(
            [
                (Atom(3 - ex * 2, LE), "lo"),
                (Atom(ex * 2 - Fraction(39, 10), LE), "hi"),
            ]
        )


def test_branch_core_excludes_branch_tags():
    try:
        check_conjunction(
            [
                (Atom(3 - ex * 2, LE), "lo"),
                (Atom(ex * 2 - Fraction(39, 10), LE), "hi"),
                (Atom(ey - 100, LE), "unrelated"),
            ]
        )
    except TheoryConflict as conflict:
        assert conflict.core <= {"lo", "hi"}
    else:  # pragma: no cover
        pytest.fail("expected conflict")


def test_mixed_int_real():
    model = check_conjunction(
        [
            (Atom(er - ex, LT), "r_lt_x"),
            (Atom(ex - er - Fraction(1, 2), LT), "x_near_r"),
            (Atom(3 - ex, LE), "x_ge_3"),
        ]
    )
    assert model[X].denominator == 1
    assert model[R] < model[X] < model[R] + Fraction(1, 2)


def test_unsat_core_is_relevant():
    try:
        check_conjunction(
            [
                (Atom(ex - 1, LE), "a"),
                (Atom(2 - ex, LE), "b"),
                (Atom(ey - 7, LE), "noise"),
            ]
        )
    except TheoryConflict as conflict:
        assert "noise" not in conflict.core
    else:  # pragma: no cover
        pytest.fail("expected conflict")


def test_equalities_and_inequalities_combined():
    model = check_conjunction(
        [
            (Atom(ex + ey - 10, EQ), "sum"),
            (Atom(ex - ey, LT), "x_lt_y"),
            (Atom(1 - ex, LE), "x_ge_1"),
        ]
    )
    assert model[X] + model[Y] == 10
    assert model[X] < model[Y]
    assert model[X] >= 1
