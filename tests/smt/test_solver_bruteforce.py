"""End-to-end solver validation against brute-force enumeration.

Random small formulas mixing booleans, disjunctions and integer
arithmetic over a bounded domain: the DPLL(T) verdict must agree with
exhaustive enumeration, and returned models must actually satisfy the
formula.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    BVar,
    LinExpr,
    Not,
    SAT,
    Solver,
    Var,
    compare,
    conj,
    disj,
)

X = Var("x")
Y = Var("y")
P = BVar("p")
DOMAIN = range(-4, 5)


def random_formula(rng: random.Random, depth: int = 0):
    ex, ey = LinExpr.var(X), LinExpr.var(Y)
    if depth >= 2 or rng.random() < 0.4:
        kind = rng.random()
        if kind < 0.25:
            return P if rng.random() < 0.5 else Not(P)
        lhs = rng.choice([ex, ey, ex + ey, ex - ey, ex * 2])
        op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
        return compare(lhs, op, LinExpr.const_expr(rng.randint(-6, 6)))
    parts = [random_formula(rng, depth + 1) for _ in range(rng.randint(2, 3))]
    combiner = conj if rng.random() < 0.5 else disj
    formula = combiner(parts)
    if rng.random() < 0.3:
        from repro.smt import negate

        formula = negate(formula)
    return formula


def brute_force_sat(formula) -> bool:
    for xv, yv in itertools.product(DOMAIN, DOMAIN):
        for pv in (False, True):
            if formula.evaluate({X: xv, Y: yv}, {P: pv}):
                return True
    return False


def domain_box():
    ex, ey = LinExpr.var(X), LinExpr.var(Y)
    c = LinExpr.const_expr
    return conj(
        [
            compare(ex, ">=", c(DOMAIN.start)),
            compare(ex, "<=", c(DOMAIN.stop - 1)),
            compare(ey, ">=", c(DOMAIN.start)),
            compare(ey, "<=", c(DOMAIN.stop - 1)),
        ]
    )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_solver_agrees_with_bruteforce(seed):
    rng = random.Random(seed)
    formula = random_formula(rng)
    boxed = conj([formula, domain_box()])
    solver = Solver()
    solver.add(boxed)
    verdict = solver.check()
    expected = brute_force_sat(formula)
    assert (verdict == SAT) == expected, formula
    if verdict == SAT:
        model = solver.model()
        assert model.satisfies(boxed), (formula, model.values, model.booleans)
