"""Session pool and lease layer.

Two properties carry the sharded driver's soundness:

* **reuse is invisible** -- a pooled session checked out twice must
  answer every check as if it were fresh each time (lease-scoped
  additions retract on release, nothing leaks between checkouts);
* **accounting is honest** -- pool hits increment ``sessions_reused``
  and skip session construction, so the warm-churn fix is measurable.
"""

import pytest

from repro.smt import (
    LE,
    SAT,
    UNSAT,
    Atom,
    LinExpr,
    Var,
    lease_session,
    session_pool,
)
from repro.smt.session import SessionPool, _ACTIVE_POOL  # noqa: F401
from repro.smt.stats import GLOBAL_COUNTERS

X = Var("px")

#: x <= 5 as a base; x >= 10 (i.e. 10 - x <= 0) as a conflicting extra.
BASE = Atom(LinExpr({X: 1}, -5), LE)
CONFLICT = Atom(LinExpr({X: -1}, 10), LE)


def test_unpooled_lease_closes_session():
    before = GLOBAL_COUNTERS.snapshot()
    lease = lease_session((BASE,))
    assert lease.check() == SAT
    lease.release()
    lease.release()  # idempotent
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("sessions_created", 0) == 1
    assert delta.get("sessions_reused", 0) == 0
    assert delta.get("scopes_opened", 0) == delta.get("scopes_retracted", 0)


def test_pooled_lease_reuses_session_and_counts_hits():
    with session_pool() as pool:
        before = GLOBAL_COUNTERS.snapshot()
        first = lease_session((BASE,))
        session = first.session
        assert first.check() == SAT
        first.release()
        second = lease_session((BASE,))
        assert second.session is session  # same warm instance
        assert second.check() == SAT
        second.release()
        delta = GLOBAL_COUNTERS.delta_since(before)
        assert delta.get("sessions_created", 0) == 1
        assert delta.get("sessions_reused", 0) == 1
        assert pool.stats()["hits"] == 1


def test_lease_additions_do_not_poison_reuse():
    """A blocked/constrained first checkout must not constrain the
    second: lease ``add`` rides in a retractable work scope."""
    with session_pool():
        first = lease_session((BASE,))
        first.add(CONFLICT)
        assert first.check() == UNSAT
        first.release()
        second = lease_session((BASE,))
        assert second.check() == SAT  # CONFLICT retracted on release
        second.release()


def test_lease_push_scopes_are_retracted_on_release():
    with session_pool():
        before = GLOBAL_COUNTERS.snapshot()
        lease = lease_session((BASE,))
        lease.push(CONFLICT, label="probe")
        assert lease.check() == UNSAT
        lease.release()
        again = lease_session((BASE,))
        assert again.check() == SAT
        again.release()
        delta = GLOBAL_COUNTERS.delta_since(before)
        assert delta.get("scopes_opened", 0) == delta.get("scopes_retracted", 0)


def test_distinct_keys_do_not_collide():
    with session_pool():
        a = lease_session((BASE,))
        b = lease_session((CONFLICT,))
        assert a.session is not b.session
        a.release()
        b.release()


def test_pool_capacity_evicts_lru():
    pool_cm = session_pool(capacity=1)
    with pool_cm as pool:
        a = lease_session((BASE,))
        a.release()
        b = lease_session((CONFLICT,))
        b.release()  # evicts the BASE session (capacity 1)
        assert pool.stats()["evictions"] == 1
        assert pool.stats()["idle"] == 1
        c = lease_session((BASE,))  # miss: the idle entry is CONFLICT's
        c.release()
        assert pool.stats()["misses"] >= 3 - 1  # a, b, c minus the hits


def test_duplicate_release_of_same_key_closes_extra_session():
    with session_pool() as pool:
        a = lease_session((BASE,))
        b = lease_session((BASE,))  # concurrent checkout: second build
        assert a.session is not b.session
        a.release()
        b.release()  # key already idle: b's session is closed, not kept
        assert pool.stats()["idle"] == 1


def test_pool_uninstall_restores_unpooled_behavior():
    with session_pool():
        lease = lease_session((BASE,))
        lease.release()
    before = GLOBAL_COUNTERS.snapshot()
    lease = lease_session((BASE,))
    lease.release()
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("sessions_reused", 0) == 0


@pytest.mark.parametrize("rounds", [3])
def test_repeated_checkout_answers_like_fresh(rounds):
    """Differential: N pooled checkouts all agree with a fresh lease."""
    with session_pool():
        for _ in range(rounds):
            lease = lease_session((BASE,))
            assert lease.check() == SAT
            lease.add(CONFLICT)
            assert lease.check() == UNSAT
            lease.release()
