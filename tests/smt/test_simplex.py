"""Unit tests for the LRA simplex with delta-rationals."""

from fractions import Fraction

import pytest

from repro.smt import EQ, LE, LT, Atom, LinExpr, REAL, TheoryConflict, Var
from repro.smt.simplex import DeltaRational, Simplex, concrete_model

X = Var("x", REAL)
Y = Var("y", REAL)
Z = Var("z", REAL)
ex = LinExpr.var(X)
ey = LinExpr.var(Y)
ez = LinExpr.var(Z)


def solve(*atoms):
    simplex = Simplex()
    strict = []
    nonstrict = []
    for i, atom in enumerate(atoms):
        if atom.op == LT:
            strict.append(atom.expr)
        elif atom.op == LE:
            nonstrict.append(atom.expr)
        simplex.assert_atom(atom, i)
    assignment = simplex.check()
    return concrete_model(assignment, strict, nonstrict)


def assert_model_satisfies(model, atoms):
    for atom in atoms:
        value = atom.expr.evaluate({v: model.get(v, Fraction(0)) for v in atom.expr.coeffs})
        assert atom.holds(value), f"{atom} violated by {model}"


def test_deltarational_ordering():
    assert DeltaRational(Fraction(1)) < DeltaRational(Fraction(2))
    assert DeltaRational(Fraction(1)) < DeltaRational(Fraction(1), Fraction(1))
    assert DeltaRational(Fraction(1), Fraction(-1)) < DeltaRational(Fraction(1))


def test_single_upper_bound():
    atoms = [Atom(ex - 5, LE)]
    model = solve(*atoms)
    assert_model_satisfies(model, atoms)


def test_strict_bounds_get_concrete_values():
    atoms = [Atom(ex - 5, LT), Atom(4 - ex, LT)]  # 4 < x < 5
    model = solve(*atoms)
    assert Fraction(4) < model[X] < Fraction(5)


def test_concretization_respects_competing_weak_bound():
    # -3 <= x < -5/2: the strict bound alone allows delta = 1, which
    # would land at -7/2 and break the weak lower bound (regression:
    # concretize_delta used to cap on strict atoms only).
    atoms = [Atom(-3 - ex, LE), Atom(ex * 2 + 5, LT)]
    model = solve(*atoms)
    assert_model_satisfies(model, atoms)
    assert Fraction(-3) <= model[X] < Fraction(-5, 2)


def test_equality():
    atoms = [Atom(ex + ey - 10, EQ), Atom(ex - ey, EQ)]
    model = solve(*atoms)
    assert model[X] == model[Y] == 5


def test_conflict_two_bounds():
    simplex = Simplex()
    simplex.assert_atom(Atom(ex - 1, LE), "a")  # x <= 1
    with pytest.raises(TheoryConflict) as info:
        simplex.assert_atom(Atom(2 - ex, LE), "b")  # x >= 2
        simplex.check()
    assert info.value.core == {"a", "b"}


def test_conflict_through_rows():
    simplex = Simplex()
    simplex.assert_atom(Atom(ex + ey - 2, LE), "sum_le_2")
    simplex.assert_atom(Atom(3 - ex, LE), "x_ge_3")
    simplex.assert_atom(Atom(0 - ey, LE), "y_ge_0")
    with pytest.raises(TheoryConflict) as info:
        simplex.check()
    assert "sum_le_2" in info.value.core
    assert "x_ge_3" in info.value.core


def test_strict_cycle_conflict():
    # x < y, y < z, z < x is infeasible.
    simplex = Simplex()
    simplex.assert_atom(Atom(ex - ey, LT), "xy")
    simplex.assert_atom(Atom(ey - ez, LT), "yz")
    simplex.assert_atom(Atom(ez - ex, LT), "zx")
    with pytest.raises(TheoryConflict):
        simplex.check()


def test_strict_vs_nonstrict_boundary():
    # x <= 3 and x >= 3 is sat; x < 3 and x >= 3 is not.
    model = solve(Atom(ex - 3, LE), Atom(3 - ex, LE))
    assert model[X] == 3
    simplex = Simplex()
    simplex.assert_atom(Atom(ex - 3, LT), "a")
    with pytest.raises(TheoryConflict):
        simplex.assert_atom(Atom(3 - ex, LE), "b")
        simplex.check()


def test_shared_linear_form():
    # Both constraints talk about x+y: they must share a slack variable.
    simplex = Simplex()
    simplex.assert_atom(Atom(ex + ey - 10, LE), "a")
    simplex.assert_atom(Atom(5 - ex - ey, LE), "b")
    assignment = simplex.check()
    assert simplex._slack_count == 1 or len(simplex.rows) <= 2
    value = assignment[X].real + assignment[Y].real
    assert Fraction(5) <= value <= Fraction(10)


def test_motivating_example_constraints():
    # a2 - b1 < 20, a1 - a2 < a2 - b1 + 10, b1 < 0 (section 3.2).
    a1, a2, b1 = (Var(n, REAL) for n in ("a1", "a2", "b1"))
    e1, e2, e3 = LinExpr.var(a1), LinExpr.var(a2), LinExpr.var(b1)
    atoms = [
        Atom(e2 - e3 - 20, LT),
        Atom((e1 - e2) - (e2 - e3) - 10, LT),
        Atom(e3, LT),
    ]
    model = solve(*atoms)
    assert_model_satisfies(
        model,
        atoms,
    )


def test_degenerate_constant_atom():
    simplex = Simplex()
    simplex.assert_atom(Atom(LinExpr.const_expr(-1), LE), "ok")
    with pytest.raises(TheoryConflict):
        simplex.assert_atom(Atom(LinExpr.const_expr(1), LE), "bad")


def test_negative_single_var_coefficient():
    # -2x <= -6  =>  x >= 3
    model = solve(Atom(LinExpr({X: -2}, 0) + 6, LE))
    assert model[X] >= 3


def test_many_constraints_feasible():
    atoms = []
    for i in range(1, 8):
        atoms.append(Atom(ex * i + ey - 10 * i, LE))
        atoms.append(Atom(-(ex * i) - ey - 10 * i, LE))
    model = solve(*atoms)
    assert_model_satisfies(model, atoms)
