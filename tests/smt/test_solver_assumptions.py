"""Tests for assumption-based solving on the DPLL(T) facade."""

import pytest

from repro.smt import (
    LE,
    LT,
    SAT,
    UNSAT,
    Atom,
    BVar,
    LinExpr,
    Not,
    Solver,
    SolverError,
    Var,
    compare,
    conj,
)

X = Var("x")
ex = LinExpr.var(X)
c = LinExpr.const_expr


def test_assumed_atom_constrains_model():
    solver = Solver()
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(100))]))
    assert solver.check(assumptions=[Atom(ex - 5, LE)]) == SAT
    assert solver.model().int_value(X) <= 5


def test_assumptions_do_not_persist():
    solver = Solver()
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(100))]))
    assert solver.check(assumptions=[Atom(ex - 0, LE)]) == SAT
    assert solver.model().int_value(X) == 0
    # Without the assumption the full range is available again.
    assert solver.check(assumptions=[Atom(50 - ex, LE)]) == SAT
    assert solver.model().int_value(X) >= 50
    assert solver.check() == SAT


def test_unsat_under_assumptions_only():
    solver = Solver()
    solver.add(compare(ex, ">=", c(10)))
    assert solver.check(assumptions=[Atom(ex - 5, LT)]) == UNSAT
    assert solver.check() == SAT


def test_negated_atom_assumption():
    solver = Solver()
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(10))]))
    # NOT (x <= 7)  =>  x > 7
    assert solver.check(assumptions=[Not(Atom(ex - 7, LE))]) == SAT
    assert solver.model().int_value(X) > 7


def test_boolean_assumption():
    flag = BVar("flag")
    solver = Solver()
    from repro.smt import disj

    solver.add(disj([flag, compare(ex, ">", c(50))]))
    solver.add(compare(ex, "<=", c(10)))
    assert solver.check(assumptions=[Not(flag)]) == UNSAT
    assert solver.check(assumptions=[flag]) == SAT


def test_non_literal_assumption_rejected():
    solver = Solver()
    solver.add(compare(ex, ">=", c(0)))
    with pytest.raises(SolverError):
        solver.check(assumptions=[conj([Atom(ex - 5, LE), Atom(-ex, LT)])])


def test_learned_clauses_stay_sound_across_assumption_sets():
    """Exercise the warm-solver pattern the sampler relies on."""
    solver = Solver()
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(30))]))
    seen = set()
    for low in (0, 10, 20):
        status = solver.check(
            assumptions=[Atom(c(low) - ex, LE), Atom(ex - (low + 5), LE)]
        )
        assert status == SAT
        value = solver.model().int_value(X)
        assert low <= value <= low + 5
        seen.add(value)
    assert len(seen) == 3
