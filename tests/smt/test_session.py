"""Differential tests for the warm session layer.

The load-bearing property: a :class:`SmtSession` with activation
literals, retraction and theory-relevance suppression must answer every
check *exactly* like a sealed fresh solver over the currently-active
formulas.  The randomized trace test replays CEGIS-shaped histories
(push candidate, probe, block, retract, repeat) against both.
"""

import random

import pytest

from repro.smt import (
    EQ,
    LE,
    LT,
    NE,
    SAT,
    UNSAT,
    Atom,
    LinExpr,
    Var,
    conj,
    disj,
)
from repro.smt.session import SmtSession, certified_solver
from repro.smt.solver import Solver
from repro.smt.stats import GLOBAL_COUNTERS

X = Var("sx")
Y = Var("sy")
Z = Var("sz")
VARS = [X, Y, Z]


def _random_atom(rng: random.Random, ops=(LE, LE, LT, EQ, NE)) -> Atom:
    picked = rng.sample(VARS, rng.randint(1, 2))
    coeffs = {v: rng.randint(-3, 3) for v in picked}
    if not any(coeffs.values()):
        coeffs[picked[0]] = 1
    return Atom(LinExpr(coeffs, rng.randint(-8, 8)), rng.choice(ops))


def _random_formula(rng: random.Random):
    atoms = [_random_atom(rng) for _ in range(rng.randint(1, 3))]
    if len(atoms) == 1:
        return atoms[0]
    return disj(atoms) if rng.random() < 0.5 else conj(atoms)


def _fresh_verdict(formulas, assumptions) -> str:
    """Reference answer: sealed cold solver, everything asserted."""
    solver = Solver(bnb_budget=4000)
    solver.add(*formulas)
    solver.add(*assumptions)
    return solver.check()


@pytest.mark.parametrize("seed", range(8))
def test_randomized_trace_matches_fresh_solver(seed):
    rng = random.Random(seed)
    session = SmtSession(bnb_budget=4000)

    base = [_random_formula(rng) for _ in range(2)]
    session.assert_base(*base)
    active: list[tuple] = []  # (scope, [formulas])
    checks = 0

    for _ in range(30):
        op = rng.random()
        if op < 0.25:
            formulas = [_random_formula(rng) for _ in range(rng.randint(1, 2))]
            scope = session.push(*formulas, label=f"t{seed}")
            active.append((scope, list(formulas)))
        elif op < 0.40 and active:
            scope, formulas = rng.choice(active)
            extra = _random_formula(rng)
            scope.add(extra)
            formulas.append(extra)
        elif op < 0.60 and active:
            index = rng.randrange(len(active))
            scope, _ = active.pop(index)
            scope.retract()
        elif op < 0.70:
            extra = _random_formula(rng)
            session.assert_base(extra)
            base.append(extra)
        else:
            # Assumptions must be literal-shaped bounds (the theory
            # layer splits disequalities only inside encoded formulas).
            assumptions = [
                _random_atom(rng, ops=(LE, LT)) for _ in range(rng.randint(0, 2))
            ]
            live = base + [f for _, fs in active for f in fs]
            verdict = session.check(assumptions or None)
            assert verdict == _fresh_verdict(live, assumptions)
            checks += 1
            if verdict == SAT and not assumptions:
                model = session.model()
                assignment = {v: model.value(v) for v in VARS}
                for formula in live:
                    assert formula.evaluate(assignment)
    assert checks > 0, "trace never checked; widen the op distribution"


def test_retraction_restores_satisfiability():
    session = SmtSession()
    x = LinExpr.var(X)
    session.assert_base(Atom(x - 10, LE))  # x <= 10
    scope = session.push(Atom(x, LT), Atom(-x, LT))  # x < 0 AND x > 0
    assert session.check() == UNSAT
    scope.retract()
    assert session.check() == SAT


def test_disabled_scope_sits_out_a_check():
    session = SmtSession()
    x = LinExpr.var(X)
    scope = session.push(Atom(x, LT), Atom(-x, LT))
    assert session.check() == UNSAT
    assert session.check(disable=[scope]) == SAT
    # Dormant, not retracted: the scope constrains the next check again.
    assert session.check() == UNSAT


def test_retracted_scope_rejects_further_additions():
    session = SmtSession()
    scope = session.push(Atom(LinExpr.var(X), LE))
    scope.retract()
    scope.retract()  # idempotent
    with pytest.raises(ValueError):
        scope.add(Atom(LinExpr.var(Y), LE))


def test_dead_atoms_are_suppressed_and_revived():
    session = SmtSession()
    atom = Atom(LinExpr.var(X) - 5, LE)
    scope = session.push(atom)
    assert session.check() == SAT
    scope.retract()
    # Referenced by no live scope: skipped in theory rounds.
    assert atom in session._solver._suppressed
    session.push(atom)
    assert atom not in session._solver._suppressed
    assert session.check() == SAT


def test_base_atoms_survive_scope_retraction():
    session = SmtSession()
    atom = Atom(LinExpr.var(X) - 5, LE)
    session.assert_base(atom)
    scope = session.push(atom)  # same atom also referenced by a scope
    scope.retract()
    assert atom not in session._solver._suppressed
    # x <= 5 must still constrain: x >= 6 is now contradictory.
    assert session.check([Atom(LinExpr.const_expr(6) - LinExpr.var(X), LE)]) == UNSAT


def test_assumption_atoms_override_suppression():
    session = SmtSession()
    atom = Atom(LinExpr.var(X) - 5, LE)
    scope = session.push(atom)
    scope.retract()
    assert atom in session._solver._suppressed
    # Passing the dead atom as an assumption must constrain this check.
    contradiction = Atom(LinExpr.const_expr(6) - LinExpr.var(X), LE)
    assert session.check([atom, contradiction]) == UNSAT


def test_certified_check_uses_sealed_fresh_solver():
    session = SmtSession()
    session.assert_base(Atom(LinExpr.var(X) - 5, LE))
    before = GLOBAL_COUNTERS.snapshot()
    solver = session.certified_check(
        [Atom(LinExpr.var(X), LT), Atom(-LinExpr.var(X), LT)]
    )
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("proof_fallbacks") == 1
    assert solver.proof_log is not None
    assert solver.proof_log.result == UNSAT


def test_session_counters_track_reuse():
    before = GLOBAL_COUNTERS.snapshot()
    session = SmtSession()
    session.assert_base(Atom(LinExpr.var(X) - 5, LE))
    scope = session.push(Atom(LinExpr.var(X), LT))
    session.check()
    session.check()
    scope.retract()
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("sessions_created") == 1
    assert delta.get("solvers_constructed") == 1
    assert delta.get("session_checks") == 2
    assert delta.get("scopes_opened") == 1
    assert delta.get("scopes_retracted") == 1
    assert session.checks_served == 2


def test_close_retracts_abandoned_scopes():
    # The cold-path teardown contract: close() balances the scope
    # counters even when the caller abandons scopes mid-flight (the
    # source of the historical ``scopes_retracted: 0`` bench artifact).
    before = GLOBAL_COUNTERS.snapshot()
    session = SmtSession()
    session.assert_base(Atom(LinExpr.var(X) - 5, LE))
    session.push(Atom(LinExpr.var(X), LT))
    session.push(Atom(LinExpr.var(X) + 3, LT))
    session.check()
    session.close()
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("scopes_opened") == 2
    assert delta.get("scopes_retracted") == 2
    # close() is idempotent: already-retracted scopes are skipped.
    session.close()
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("scopes_retracted") == 2


def test_certified_solver_round_trip():
    solver = certified_solver([Atom(LinExpr.var(X) - 5, LE)])
    assert solver.proof_log is not None
    assert solver.proof_log.result == SAT
