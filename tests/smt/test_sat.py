"""Unit and property tests for the CDCL SAT core."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SatSolver, _luby


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause) for clause in clauses
        ):
            return True
    return False


def check_model(solver: SatSolver, clauses: list[list[int]]) -> None:
    model = solver.model()
    for clause in clauses:
        assert any(model[abs(l)] == (l > 0) for l in clause), clause


def test_luby_prefix():
    assert [_luby(i) for i in range(1, 10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]


def test_empty_instance_is_sat():
    solver = SatSolver()
    assert solver.solve()


def test_unit_clause():
    solver = SatSolver()
    solver.add_clause([1])
    assert solver.solve()
    assert solver.model()[1]


def test_contradictory_units():
    solver = SatSolver()
    solver.add_clause([1])
    assert not solver.add_clause([-1]) or not solver.solve()


def test_simple_sat():
    solver = SatSolver()
    clauses = [[1, 2], [-1, 2], [1, -2]]
    for c in clauses:
        solver.add_clause(list(c))
    assert solver.solve()
    check_model(solver, clauses)


def test_simple_unsat():
    solver = SatSolver()
    for c in [[1, 2], [-1, 2], [1, -2], [-1, -2]]:
        solver.add_clause(list(c))
    assert not solver.solve()


def test_pigeonhole_3_into_2_unsat():
    # p(i, j): pigeon i in hole j; vars 1..6
    def var(i, j):
        return i * 2 + j + 1

    solver = SatSolver()
    for i in range(3):
        solver.add_clause([var(i, 0), var(i, 1)])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                solver.add_clause([-var(i1, j), -var(i2, j)])
    assert not solver.solve()


def test_tautology_is_ignored():
    solver = SatSolver()
    solver.add_clause([1, -1])
    solver.add_clause([2])
    assert solver.solve()
    assert solver.model()[2]


def test_incremental_clause_addition():
    solver = SatSolver()
    solver.add_clause([1, 2])
    assert solver.solve()
    solver.finish()
    solver.add_clause([-1])
    assert solver.solve()
    assert solver.model()[2]
    solver.finish()
    solver.add_clause([-2])
    assert not solver.solve()


def test_assumptions_sat_then_unsat():
    solver = SatSolver()
    solver.add_clause([1, 2])
    solver.add_clause([-1, 3])
    assert solver.solve(assumptions=[1])
    assert solver.model()[1]
    assert solver.model()[3]
    assert solver.solve(assumptions=[-1])
    assert solver.model()[2]
    solver.finish()
    solver.add_clause([-2])
    assert not solver.solve(assumptions=[-1])
    # Without the assumption the instance is still satisfiable.
    assert solver.solve()


def test_assumption_of_failed_literal():
    solver = SatSolver()
    solver.add_clause([1])
    assert not solver.solve(assumptions=[-1])
    assert solver.solve(assumptions=[1])


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_vars=st.integers(min_value=1, max_value=8),
    num_clauses=st.integers(min_value=1, max_value=30),
)
def test_random_3sat_matches_bruteforce(seed, num_vars, num_clauses):
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clause = []
        for _ in range(width):
            v = rng.randint(1, num_vars)
            clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    solver = SatSolver()
    ok = True
    for c in clauses:
        ok = solver.add_clause(list(c)) and ok
    result = ok and solver.solve()
    assert result == brute_force(num_vars, clauses)
    if result:
        check_model(solver, clauses)
