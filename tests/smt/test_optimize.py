"""Tests for the linear optimization layer."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    LinExpr,
    Var,
    bounds,
    compare,
    conj,
    disj,
    maximize,
    minimize,
)

X = Var("x")
Y = Var("y")
ex, ey = LinExpr.var(X), LinExpr.var(Y)
c = LinExpr.const_expr


def box(lo, hi):
    return conj(
        [
            compare(ex, ">=", c(lo)),
            compare(ex, "<=", c(hi)),
            compare(ey, ">=", c(lo)),
            compare(ey, "<=", c(hi)),
        ]
    )


def test_maximize_single_var():
    result = maximize(box(0, 10), ex)
    assert result is not None
    model, value = result
    assert value == 10
    assert model.value(X) == 10


def test_minimize_single_var():
    result = minimize(box(-3, 10), ex)
    assert result is not None
    assert result[1] == -3


def test_maximize_combined_objective():
    result = maximize(box(0, 5), ex + ey * 2)
    assert result is not None
    assert result[1] == 15


def test_maximize_with_coupling_constraint():
    formula = conj([box(0, 10), compare(ex + ey, "<=", c(7))])
    result = maximize(formula, ex + ey)
    assert result is not None
    assert result[1] == 7


def test_unsat_returns_none():
    formula = conj([compare(ex, "<", c(0)), compare(ex, ">", c(0))])
    assert maximize(formula, ex) is None
    assert minimize(formula, ex) is None


def test_unbounded_stops_at_budget():
    result = maximize(compare(ex, ">=", c(0)), ex, max_steps=5)
    assert result is not None
    # Sound: a real model with a finite value.
    assert result[1] >= 0


def test_maximize_over_disjunction():
    formula = conj(
        [
            box(0, 100),
            disj([compare(ex, "<=", c(3)), compare(ex, ">=", c(90))]),
        ]
    )
    result = maximize(formula, ex)
    assert result is not None
    assert result[1] == 100


def test_bounds():
    low, high = bounds(box(2, 9), ex)
    assert (low, high) == (2, 9)
    low, high = bounds(conj([compare(ex, "<", c(0)), compare(ex, ">", c(0))]), ex)
    assert low is None and high is None


@settings(max_examples=20, deadline=None)
@given(
    lo=st.integers(min_value=-20, max_value=0),
    hi=st.integers(min_value=1, max_value=20),
    a=st.integers(min_value=1, max_value=5),
)
def test_maximize_linear_property(lo, hi, a):
    result = maximize(box(lo, hi), ex * a)
    assert result is not None
    assert result[1] == Fraction(a * hi)
