"""Property-based validation of quantifier elimination.

Random bounded conjunctions are projected with Fourier-Motzkin and the
result is compared pointwise against brute-force existential checks --
the soundness property Sia's FALSE samples depend on (Lemma 4).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import LinExpr, Var, compare, conj, is_satisfiable
from repro.smt.qe import unsat_region

X = Var("x")
Y = Var("y")
B = Var("b")
ex, ey, eb = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(B)
c = LinExpr.const_expr

B_RANGE = range(-12, 13)

coeff = st.integers(min_value=-2, max_value=2)
const = st.integers(min_value=-15, max_value=15)
op = st.sampled_from(["<", "<=", ">", ">="])


@st.composite
def bounded_predicates(draw):
    """A conjunction over (x, y, b) with b explicitly boxed, so the
    brute-force existential check over B_RANGE is exact."""
    atoms = [
        compare(eb, ">=", c(B_RANGE.start)),
        compare(eb, "<=", c(B_RANGE.stop - 1)),
    ]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        a1, a2, a3 = draw(coeff), draw(coeff), draw(st.integers(-2, 2))
        if a3 == 0:
            a3 = 1  # keep b involved so projection has work to do
        expr = ex * a1 + ey * a2 + eb * a3
        atoms.append(compare(expr, draw(op), c(draw(const))))
    return conj(atoms)


def region_contains(region, x_value, y_value):
    fixed = conj(
        [
            region,
            compare(ex, "=", c(x_value)),
            compare(ey, "=", c(y_value)),
        ]
    )
    return is_satisfiable(fixed)


def brute_force_extension_exists(pred, x_value, y_value):
    assignment = {X: x_value, Y: y_value}
    for b_value in B_RANGE:
        assignment[B] = b_value
        if pred.evaluate(assignment):
            return True
    return False


@settings(max_examples=25, deadline=None)
@given(
    pred=bounded_predicates(),
    x_value=st.integers(min_value=-10, max_value=10),
    y_value=st.integers(min_value=-10, max_value=10),
)
def test_unsat_region_soundness(pred, x_value, y_value):
    """Any point in the computed region is a genuine unsatisfaction
    tuple (no extension exists) -- soundness must hold even when the
    projection is inexact."""
    result = unsat_region(pred, {X, Y})
    if region_contains(result.formula, x_value, y_value):
        assert not brute_force_extension_exists(pred, x_value, y_value)


@settings(max_examples=25, deadline=None)
@given(
    pred=bounded_predicates(),
    x_value=st.integers(min_value=-10, max_value=10),
    y_value=st.integers(min_value=-10, max_value=10),
)
def test_unsat_region_exactness_when_flagged(pred, x_value, y_value):
    """When the projection reports exactness, region membership must
    coincide with brute force in both directions."""
    result = unsat_region(pred, {X, Y})
    if not result.exact:
        return
    in_region = region_contains(result.formula, x_value, y_value)
    assert in_region == (not brute_force_extension_exists(pred, x_value, y_value))
