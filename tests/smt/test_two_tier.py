"""Two-tier tableau backend: differential and adversarial coverage.

The float tier is allowed to be wrong -- these tests construct tableaux
where it *is* (huge coefficient ratios, epsilon-straddling bounds,
near-degenerate pivots, and an outright-lying stub tier) and assert the
exact tier silently corrects every verdict.  A differential fuzz pass
asserts final SAT/UNSAT verdicts are tier-independent, and the
certified path is checked to produce pure-Fraction certificates with
the filter on.
"""

import random
from fractions import Fraction

import pytest

from repro.smt import (
    EQ,
    LE,
    LT,
    SAT,
    UNSAT,
    Atom,
    LinExpr,
    REAL,
    Solver,
    TheoryConflict,
    Var,
    conj,
    is_satisfiable,
)
from repro.smt.backend import (
    FLOAT_FILTER,
    FLOAT_MODES,
    FLOAT_OFF,
    FLOAT_TRUST_SAT,
    check_tableau,
    resolve_float_mode,
)
from repro.smt import backend as backend_mod
from repro.smt.floatsimplex import FloatConflict, FloatSimplex
from repro.smt.session import SmtSession
from repro.smt.stats import GLOBAL_COUNTERS
from repro.smt.theory import check_conjunction

X = Var("x", REAL)
Y = Var("y", REAL)
Z = Var("z", REAL)
ex = LinExpr.var(X)
ey = LinExpr.var(Y)
ez = LinExpr.var(Z)

FILTER_MODES = [FLOAT_FILTER, FLOAT_TRUST_SAT]


@pytest.fixture(autouse=True)
def _isolate_float_mode_env(monkeypatch):
    # This file tests the tier machinery itself across explicit modes;
    # a CI-level SIA_FLOAT_FILTER override must not leak in.
    monkeypatch.delenv("SIA_FLOAT_FILTER", raising=False)


def _tagged(atoms):
    return [(atom, i + 1) for i, atom in enumerate(atoms)]


def _holds(atom, model):
    value = atom.expr.evaluate(
        {v: model.get(v, Fraction(0)) for v in atom.expr.coeffs}
    )
    return atom.holds(value)


def _verdict(atoms, mode):
    """SAT model or the TheoryConflict, via check_conjunction."""
    try:
        return ("sat", check_conjunction(_tagged(atoms), float_mode=mode))
    except TheoryConflict as conflict:
        return ("unsat", conflict)


def _assert_exact_conflict(conflict, atoms):
    """The conflict is over input tags and its witness is float-free."""
    tags = set(range(1, len(atoms) + 1))
    assert set(conflict.core) <= tags
    if conflict.farkas is not None:
        for coeff, _tag, expr, _op in conflict.farkas:
            assert isinstance(coeff, Fraction)
            assert isinstance(expr.const, (int, Fraction))
            for value in expr.coeffs.values():
                assert isinstance(value, (int, Fraction))


# ----------------------------------------------------------------------
# Adversarial tableaux: the float tier is wrong, the exact tier corrects
# ----------------------------------------------------------------------
def test_huge_coefficient_ratio_float_misses_unsat():
    # x >= 1, y >= 1, x + 1e18*y <= 1e18: exactly UNSAT, but in floats
    # 1e18 + 1 rounds to 1e18, so the float tier sees a model.
    atoms = [
        Atom(1 - ex, LE),
        Atom(1 - ey, LE),
        Atom(ex + ey * 10**18 - 10**18, LE),
    ]
    for mode in FLOAT_MODES:
        kind, payload = _verdict(atoms, mode)
        assert kind == "unsat", mode
        _assert_exact_conflict(payload, atoms)


def test_epsilon_straddling_bounds_float_misses_unsat():
    # x <= 5 and x >= 5 + 1/10^12: the gap is far below the float
    # tier's lenient epsilon, so it sees the bounds as touching.
    gap = Fraction(1, 10**12)
    atoms = [Atom(ex - 5, LE), Atom((5 + gap) - ex, LE)]
    before = GLOBAL_COUNTERS.tier_disagreements
    for mode in FLOAT_MODES:
        kind, payload = _verdict(atoms, mode)
        assert kind == "unsat", mode
        _assert_exact_conflict(payload, atoms)
    # The float tier answered SAT; plain ``filter`` mode just re-solves
    # (no confirmation, no disagreement recorded), but ``trust-sat``
    # mode catches the candidate failing the exact model check.
    assert GLOBAL_COUNTERS.tier_disagreements >= before + 1


def test_near_degenerate_pivot_float_misses_sat():
    # s = x + y/10^13 >= 2 with x <= 1 is exactly feasible (push y),
    # but y's column coefficient is below PIVOT_EPS, so the float tier
    # cannot pivot on it and suspects a conflict.  The exact tier
    # refutes the suspicion and produces a real model.
    atoms = [
        Atom(2 - (ex + ey * Fraction(1, 10**13)), LE),
        Atom(ex - 1, LE),
    ]
    before = GLOBAL_COUNTERS.tier_disagreements
    for mode in FILTER_MODES:
        kind, model = _verdict(atoms, mode)
        assert kind == "sat", mode
        assert all(_holds(atom, model) for atom in atoms)
    assert GLOBAL_COUNTERS.tier_disagreements >= before + 2


def test_lying_float_tier_is_refuted(monkeypatch):
    # Stub tier that claims every system is infeasible, blaming every
    # tag: the exact tier must refute the suspected core and still
    # return a model.
    class LyingSimplex(FloatSimplex):
        def check(self):
            raise FloatConflict(
                frozenset(bound.tag for bound in self.lower.values())
                | frozenset(bound.tag for bound in self.upper.values())
            )

    monkeypatch.setattr(backend_mod, "FloatSimplex", LyingSimplex)
    atoms = [Atom(1 - ex, LE), Atom(ex - 3, LE)]
    before = GLOBAL_COUNTERS.tier_disagreements
    kind, model = _verdict(atoms, FLOAT_FILTER)
    assert kind == "sat"
    assert all(_holds(atom, model) for atom in atoms)
    assert GLOBAL_COUNTERS.tier_disagreements == before + 1


# ----------------------------------------------------------------------
# Confirmation paths
# ----------------------------------------------------------------------
def test_unsat_confirmation_reuses_suspected_core():
    atoms = [Atom(ex - 1, LE), Atom(2 - ex, LE), Atom(ey - 7, LE)]
    before = GLOBAL_COUNTERS.float_unsat_confirmed
    kind, conflict = _verdict(atoms, FLOAT_FILTER)
    assert kind == "unsat"
    # The irrelevant y bound (tag 3) must not pollute the core.
    assert set(conflict.core) == {1, 2}
    _assert_exact_conflict(conflict, atoms)
    assert GLOBAL_COUNTERS.float_unsat_confirmed == before + 1


def test_trust_sat_candidate_is_exact_and_checked():
    atoms = [
        Atom(3 - ex, LE),           # x >= 3
        Atom(ex - 10, LT),          # x < 10
        Atom(ex + ey - 12, EQ),     # x + y = 12
        Atom(ez * 3 - 1, LE),       # z <= 1/3
    ]
    before = GLOBAL_COUNTERS.float_sat_confirmed
    kind, model = _verdict(atoms, FLOAT_TRUST_SAT)
    assert kind == "sat"
    assert all(_holds(atom, model) for atom in atoms)
    for value in model.values():
        assert isinstance(value, Fraction)
    assert GLOBAL_COUNTERS.float_sat_confirmed == before + 1


def test_give_up_falls_back_to_exact(monkeypatch):
    from repro.smt import floatsimplex as fs

    monkeypatch.setattr(fs, "_MAX_PIVOTS", 0)
    atoms = [Atom(2 - (ex + ey), LE), Atom(ex - 1, LE), Atom(ey - 1, LE)]
    before = GLOBAL_COUNTERS.tier_fallbacks
    kind, model = _verdict(atoms, FLOAT_FILTER)
    assert kind == "sat"
    assert all(_holds(atom, model) for atom in atoms)
    assert GLOBAL_COUNTERS.tier_fallbacks == before + 1


# ----------------------------------------------------------------------
# Differential fuzz: verdicts are tier-independent
# ----------------------------------------------------------------------
def _random_atoms(rng):
    exprs = [ex, ey, ez, ex + ey, ex - ez, ey * 2 + ez]
    atoms = []
    for _ in range(rng.randint(2, 7)):
        expr = rng.choice(exprs)
        scale = rng.choice(
            [1, -1, 3, Fraction(1, 7), 10**rng.choice([0, 6, 15])]
        )
        const = Fraction(rng.randint(-40, 40), rng.choice([1, 1, 2, 9]))
        op = rng.choice([LE, LE, LT, EQ])
        atoms.append(Atom(expr * scale - const, op))
    return atoms


def test_differential_fuzz_conjunction_verdicts_tier_independent():
    rng = random.Random(20260808)
    disagreements = 0
    for _ in range(150):
        atoms = _random_atoms(rng)
        results = {}
        for mode in FLOAT_MODES:
            kind, payload = _verdict(atoms, mode)
            results[mode] = (kind, payload)
        kinds = {kind for kind, _ in results.values()}
        assert len(kinds) == 1, f"verdicts diverged on {atoms}: {results}"
        (kind, _) = results[FLOAT_OFF]
        for mode in FILTER_MODES:
            _, payload = results[mode]
            if kind == "sat":
                assert all(_holds(atom, payload) for atom in atoms)
            else:
                _assert_exact_conflict(payload, atoms)
                disagreements += 1
    assert disagreements  # the fuzz actually exercised UNSAT paths


def test_differential_full_solver_verdicts_and_certificates():
    from repro.analysis.certify import audit_proof
    from repro.smt.session import certified_solver
    from tests.smt.test_solver_bruteforce import random_formula

    rng = random.Random(7)
    for _ in range(40):
        formula = random_formula(rng)
        verdicts = {
            mode: is_satisfiable(formula, float_filter=mode)
            for mode in FLOAT_MODES
        }
        assert len(set(verdicts.values())) == 1, formula
        if not verdicts[FLOAT_OFF]:
            # Certified replay with the filter on: the audit must pass
            # and the proof's theory certificates must be float-free.
            solver = certified_solver([formula], float_filter=FLOAT_TRUST_SAT)
            assert solver.proof_log is not None
            assert solver.proof_log.result == UNSAT
            assert audit_proof(solver.proof_log, origin="two-tier") == []


# ----------------------------------------------------------------------
# Mode resolution and threading
# ----------------------------------------------------------------------
def test_resolve_float_mode_validates():
    assert resolve_float_mode(None) == FLOAT_OFF
    assert resolve_float_mode(FLOAT_TRUST_SAT) == FLOAT_TRUST_SAT
    with pytest.raises(ValueError):
        resolve_float_mode("sometimes")


def test_env_override_forces_mode(monkeypatch):
    monkeypatch.setenv("SIA_FLOAT_FILTER", FLOAT_OFF)
    assert resolve_float_mode(FLOAT_TRUST_SAT) == FLOAT_OFF
    monkeypatch.setenv("SIA_FLOAT_FILTER", FLOAT_FILTER)
    assert resolve_float_mode(None) == FLOAT_FILTER
    before = GLOBAL_COUNTERS.float_checks
    solver = Solver()  # env says "filter": the float tier must run
    solver.add(Atom(ex - 1, LE))
    assert solver.check() == SAT
    assert GLOBAL_COUNTERS.float_checks > before


def test_session_threads_float_filter():
    before = GLOBAL_COUNTERS.float_checks
    session = SmtSession(float_filter=FLOAT_TRUST_SAT)
    session.assert_base(conj([Atom(1 - ex, LE), Atom(ex - 4, LE)]))
    assert session.check() == SAT
    assert GLOBAL_COUNTERS.float_checks > before
    model = session.model()
    assert Fraction(1) <= model.value(X) <= Fraction(4)


def test_scope_semantics_survive_the_filter():
    # Push/retract across modes: verdicts must match the exact-only
    # session check for check.
    for mode in FLOAT_MODES:
        session = SmtSession(float_filter=mode)
        session.assert_base(Atom(1 - ex, LE))  # x >= 1
        scope = session.push(Atom(ex - 0, LE), label="contradiction")
        assert session.check() == UNSAT
        scope.retract()
        assert session.check() == SAT
        session.close()
