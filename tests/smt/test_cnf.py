"""Unit tests for the Tseitin encoder."""

import itertools

from repro.smt import FALSE, LE, LT, TRUE, Atom, BVar, LinExpr, Not, Var, conj, disj
from repro.smt.cnf import CnfBuilder, encode

X = Var("x")
ex = LinExpr.var(X)


def satisfying_assignments(result):
    """Brute-force models of the clause set over its variables."""
    n = result.num_vars
    models = []
    for bits in itertools.product([False, True], repeat=n):
        assignment = (None,) + bits  # 1-indexed
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in result.clauses
        ):
            models.append(assignment)
    return models


def test_true_produces_nothing():
    result = encode(TRUE)
    assert result.clauses == []
    assert not result.trivially_false


def test_false_is_trivially_false():
    result = encode(FALSE)
    assert result.trivially_false


def test_single_atom():
    atom = Atom(ex - 5, LE)
    result = encode(atom)
    assert result.var_of_atom[atom] == 1
    assert result.clauses == [[1]]


def test_complementary_atoms_share_variable():
    atom = Atom(ex - 5, LE)
    builder = CnfBuilder()
    builder.assert_formula(atom)
    builder.assert_formula(Not(atom))  # negation maps to -var of `atom`
    result = builder.result
    assert len(result.var_of_atom) == 1
    assert [1] in result.clauses and [-1] in result.clauses


def test_conjunction_structure():
    a = Atom(ex - 5, LE)
    b = BVar("flag")
    result = encode(conj([a, b]))
    models = satisfying_assignments(result)
    a_var = result.var_of_atom[a]
    b_var = result.var_of_atom[b]
    assert models
    for model in models:
        assert model[a_var] and model[b_var]


def test_disjunction_structure():
    a = Atom(ex - 5, LE)
    b = BVar("flag")
    result = encode(disj([a, b]))
    a_var = result.var_of_atom[a]
    b_var = result.var_of_atom[b]
    for model in satisfying_assignments(result):
        assert model[a_var] or model[b_var]


def test_nested_formula_equisatisfiable():
    a = Atom(ex - 5, LE)
    b = Atom(ex, LT)
    bv = BVar("p")
    formula = disj([conj([a, bv]), conj([b, Not(bv)])])
    result = encode(formula)
    models = satisfying_assignments(result)
    assert models  # equisatisfiable with the satisfiable input
    a_var, b_var, bv_var = (
        result.var_of_atom[a],
        result.var_of_atom[b],
        result.var_of_atom[bv],
    )
    for model in models:
        assert (model[a_var] and model[bv_var]) or (
            model[b_var] and not model[bv_var]
        )


def test_incremental_assertions_accumulate():
    builder = CnfBuilder()
    builder.assert_formula(Atom(ex - 5, LE))
    first_clause_count = len(builder.result.clauses)
    builder.assert_formula(BVar("q"))
    assert len(builder.result.clauses) == first_clause_count + 1
    assert builder.result.num_vars == 2


def test_atom_interned_across_assertions():
    atom = Atom(ex - 5, LE)
    builder = CnfBuilder()
    builder.assert_formula(atom)
    builder.assert_formula(conj([atom, BVar("q")]))
    assert len([v for v in builder.result.var_of_atom.values()]) == 2
