"""Integration tests for the DPLL(T) solver facade."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    EQ,
    REAL,
    SAT,
    UNSAT,
    Atom,
    BVar,
    LinExpr,
    Not,
    Solver,
    Var,
    all_models,
    compare,
    conj,
    disj,
    get_model,
    implies,
    is_satisfiable,
    negate,
)

X = Var("x")
Y = Var("y")
Z = Var("z")
ex, ey, ez = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(Z)
c = LinExpr.const_expr


def test_trivial_sat_unsat():
    assert is_satisfiable(compare(ex, "<", c(10)))
    assert not is_satisfiable(conj([compare(ex, "<", c(0)), compare(ex, ">", c(0))]))


def test_model_satisfies_formula():
    formula = conj(
        [
            compare(ex + ey, "<=", c(10)),
            compare(ex, ">", ey),
            compare(ey, ">=", c(2)),
        ]
    )
    model = get_model(formula)
    assert model is not None
    assert model.satisfies(formula)
    assert model.value(X) > model.value(Y) >= 2


def test_integer_sort_respected():
    formula = conj([compare(ex * 2, "=", c(5))])
    assert not is_satisfiable(formula)
    r = Var("real_x", REAL)
    formula_real = compare(LinExpr.var(r) * 2, "=", c(5))
    model = get_model(formula_real)
    assert model is not None
    assert model.value(r) == Fraction(5, 2)


def test_disjunction_picks_feasible_branch():
    formula = conj(
        [
            disj([compare(ex, "<", c(0)), compare(ex, ">", c(100))]),
            compare(ex, ">=", c(-3)),
        ]
    )
    model = get_model(formula)
    assert model is not None
    value = model.value(X)
    assert value in range(-3, 0) or value > 100 or (-3 <= value < 0)


def test_negated_equality_split():
    formula = conj([Not(compare(ex, "=", c(5))), compare(ex, ">=", c(5)), compare(ex, "<=", c(6))])
    model = get_model(formula)
    assert model is not None
    assert model.value(X) == 6


def test_negation_of_conjunction():
    p = conj([compare(ex, ">", c(0)), compare(ex, "<", c(10))])
    formula = conj([negate(p), compare(ex, "=", c(5))])
    assert not is_satisfiable(formula)


def test_boolean_vars_mix():
    flag = BVar("flag")
    formula = conj(
        [
            disj([flag, compare(ex, ">", c(0))]),
            disj([Not(flag), compare(ex, "<", c(0))]),
        ]
    )
    model = get_model(formula)
    assert model is not None
    assert model.satisfies(formula)


def test_implies():
    p = conj([compare(ex, ">", c(5)), compare(ex, "<", c(8))])
    weaker = compare(ex, ">", c(0))
    stronger = compare(ex, ">", c(6))
    assert implies(p, weaker)
    assert not implies(p, stronger)


def test_incremental_not_old_loop():
    solver = Solver()
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(3))]))
    seen = set()
    while solver.check() == SAT:
        value = solver.model().int_value(X)
        assert value not in seen
        seen.add(value)
        solver.add(Not(compare(ex, "=", c(value))))
    assert seen == {0, 1, 2, 3}


def test_all_models_enumeration():
    formula = conj([compare(ex, ">=", c(1)), compare(ex, "<=", c(4))])
    models = list(all_models(formula, [X]))
    values = sorted(m.int_value(X) for m in models)
    assert values == [1, 2, 3, 4]


def test_all_models_respects_limit():
    formula = compare(ex, ">=", c(0))
    models = list(all_models(formula, [X], limit=5))
    assert len(models) == 5
    assert len({m.int_value(X) for m in models}) == 5


def test_unsat_after_exhaustion():
    solver = Solver()
    solver.add(compare(ex, "=", c(7)))
    assert solver.check() == SAT
    solver.add(Not(compare(ex, "=", c(7))))
    assert solver.check() == UNSAT


def test_motivating_predicate_samples():
    """Section 3.2: the running example must be satisfiable and its
    models must satisfy all three conditions."""
    a1, a2, b1 = Var("a1"), Var("a2"), Var("b1")
    e1, e2, e3 = LinExpr.var(a1), LinExpr.var(a2), LinExpr.var(b1)
    p = conj(
        [
            compare(e2 - e3, "<", c(20)),
            compare(e1 - e2, "<", e2 - e3 + 10),
            compare(e3, "<", c(0)),
        ]
    )
    model = get_model(p)
    assert model is not None
    assert model.satisfies(p)


def test_three_valued_style_pair_encoding():
    """A (value, isnull) pair encoding: null columns block atom truth."""
    is_null = BVar("x_null")
    atom_true = conj([Not(is_null), compare(ex, ">", c(0))])
    # Tuple where x is null can never make the lifted atom true.
    assert not is_satisfiable(conj([is_null, atom_true]))
    assert is_satisfiable(conj([Not(is_null), atom_true]))


@settings(max_examples=30, deadline=None)
@given(
    bound=st.integers(min_value=-20, max_value=20),
    gap=st.integers(min_value=0, max_value=10),
)
def test_interval_satisfiability(bound, gap):
    lower = compare(ex, ">=", c(bound))
    upper = compare(ex, "<=", c(bound + gap))
    assert is_satisfiable(conj([lower, upper]))
    impossible = conj([compare(ex, "<", c(bound)), compare(ex, ">", c(bound + gap))])
    assert not is_satisfiable(impossible)


@settings(max_examples=20, deadline=None)
@given(
    a=st.integers(min_value=-5, max_value=5),
    b=st.integers(min_value=-5, max_value=5),
    k=st.integers(min_value=-30, max_value=30),
)
def test_random_conjunction_model_soundness(a, b, k):
    formula = conj(
        [
            compare(ex * (a if a else 1) + ey * (b if b else 1), "<=", c(k)),
            compare(ex, ">=", c(-10)),
            compare(ey, ">=", c(-10)),
            compare(ex, "<=", c(10)),
            compare(ey, "<=", c(10)),
        ]
    )
    model = get_model(formula)
    grid_sat = any(
        formula.evaluate({X: xv, Y: yv})
        for xv in range(-10, 11)
        for yv in range(-10, 11)
    )
    if model is None:
        assert not grid_sat
    else:
        assert model.satisfies(formula)
        assert grid_sat


def test_equality_atoms():
    formula = conj([compare(ex + ey, "=", c(10)), compare(ex - ey, "=", c(4))])
    model = get_model(formula)
    assert model is not None
    assert model.value(X) == 7
    assert model.value(Y) == 3
