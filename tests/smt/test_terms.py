"""Unit tests for linear expressions and variables."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smt import INT, REAL, LinExpr, Var, linear_combination

X = Var("x")
Y = Var("y")
Z = Var("z", REAL)


def test_var_sorts():
    assert X.is_int
    assert not Z.is_int
    with pytest.raises(ValueError):
        Var("w", "complex")


def test_var_structural_identity():
    assert Var("x") == Var("x")
    assert Var("x") != Var("x", REAL)
    assert len({Var("a"), Var("a"), Var("b")}) == 2


def test_linexpr_zero_coefficients_dropped():
    expr = LinExpr({X: 1, Y: 0}, 3)
    assert expr.variables() == {X}
    assert expr.coeff(Y) == 0


def test_linexpr_arithmetic():
    expr = LinExpr.var(X) * 2 + LinExpr.var(Y) - 5
    assert expr.coeff(X) == 2
    assert expr.coeff(Y) == 1
    assert expr.const == -5
    doubled = expr * 2
    assert doubled.coeff(X) == 4
    assert doubled.const == -10
    halved = doubled / 2
    assert halved == expr


def test_linexpr_sub_and_neg():
    a = LinExpr.var(X) + 3
    b = LinExpr.var(X) - 1
    diff = a - b
    assert diff.is_constant
    assert diff.const == 4
    assert (-a).coeff(X) == -1


def test_linexpr_rsub():
    expr = 10 - LinExpr.var(X)
    assert expr.coeff(X) == -1
    assert expr.const == 10


def test_linexpr_evaluate():
    expr = LinExpr({X: 2, Y: -1}, 7)
    assert expr.evaluate({X: 3, Y: 4}) == 2 * 3 - 4 + 7


def test_linexpr_substitute():
    expr = LinExpr({X: 2, Y: 1}, 0)
    replaced = expr.substitute(X, LinExpr.var(Y) + 1)
    # 2*(y+1) + y = 3y + 2
    assert replaced.coeff(Y) == 3
    assert replaced.const == 2
    assert X not in replaced.coeffs


def test_linexpr_substitute_absent_var_is_identity():
    expr = LinExpr({Y: 1})
    assert expr.substitute(X, LinExpr.const_expr(5)) is expr


def test_scaled_integral():
    expr = LinExpr({X: Fraction(1, 2), Y: Fraction(2, 3)}, Fraction(1, 6))
    scaled = expr.scaled_integral()
    assert scaled.coeff(X) == 3
    assert scaled.coeff(Y) == 4
    assert scaled.const == 1


def test_content():
    expr = LinExpr({X: 4, Y: -6}, 3)
    assert expr.content() == 2
    assert LinExpr.const_expr(5).content() == 0


def test_division_by_zero():
    with pytest.raises(ZeroDivisionError):
        LinExpr.var(X) / 0


def test_immutability():
    expr = LinExpr.var(X)
    with pytest.raises(AttributeError):
        expr.const = Fraction(1)


def test_linear_combination():
    expr = linear_combination([(2, X), (3, X), (-1, Y)], 4)
    assert expr.coeff(X) == 5
    assert expr.coeff(Y) == -1
    assert expr.const == 4


def test_repr_smoke():
    expr = LinExpr({X: 2, Y: -1}, 7)
    text = repr(expr)
    assert "x" in text and "y" in text


coeff_st = st.integers(min_value=-20, max_value=20)
vals_st = st.integers(min_value=-100, max_value=100)


@given(a=coeff_st, b=coeff_st, c=coeff_st, x=vals_st, y=vals_st)
def test_evaluate_is_linear(a, b, c, x, y):
    expr = LinExpr({X: a, Y: b}, c)
    assert expr.evaluate({X: x, Y: y}) == a * x + b * y + c


@given(a=coeff_st, b=coeff_st, k=st.integers(min_value=-10, max_value=10))
def test_scale_distributes(a, b, k):
    expr = LinExpr({X: a}, b)
    scaled = expr * k
    assert scaled.evaluate({X: 7}) == k * expr.evaluate({X: 7})


@given(a=coeff_st, b=coeff_st, c=coeff_st, d=coeff_st)
def test_addition_commutes(a, b, c, d):
    e1 = LinExpr({X: a}, b)
    e2 = LinExpr({Y: c}, d)
    assert e1 + e2 == e2 + e1


def test_int_plus_expr():
    expr = 5 + LinExpr.var(X)
    assert expr.const == 5


def test_hash_consistency():
    e1 = LinExpr({X: 2, Y: 3}, 1)
    e2 = LinExpr({Y: 3, X: 2}, 1)
    assert e1 == e2
    assert hash(e1) == hash(e2)
