"""Pin the counting semantics documented in ``repro.smt.stats``.

The warm-CEGIS benchmarks report ``session_checks / checks`` as the
warm share, so the relationship between the three check-ish counters
must not drift:

* a warm :meth:`SmtSession.check` increments both ``checks`` and
  ``session_checks`` (the latter is a *subset* of the former);
* a certified fallback (``certified_check`` / ``certified_solver``)
  increments ``solvers_constructed``, ``checks`` and
  ``proof_fallbacks`` but never ``session_checks``.
"""

from repro.smt import LE, SAT, UNSAT, Atom, LinExpr, SmtSession, Var, conj
from repro.smt.session import certified_solver
from repro.smt.stats import GLOBAL_COUNTERS

X = Var("x")


def _box(low: int, high: int):
    expr = LinExpr.var(X)
    return conj(
        [
            Atom(expr - high, LE),  # x <= high
            Atom(LinExpr.const_expr(low) - expr, LE),  # x >= low
        ]
    )


def test_warm_check_increments_both_checks_and_session_checks():
    session = SmtSession()
    session.assert_base(_box(0, 10))
    before = GLOBAL_COUNTERS.snapshot()
    assert session.check() == SAT
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta["checks"] == 1
    assert delta["session_checks"] == 1
    assert delta["proof_fallbacks"] == 0


def test_certified_fallback_never_counts_as_session_check():
    before = GLOBAL_COUNTERS.snapshot()
    solver = certified_solver([_box(0, 10)])
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert solver.proof_log.result == SAT
    assert delta["solvers_constructed"] == 1
    assert delta["checks"] == 1
    assert delta["proof_fallbacks"] == 1
    assert delta["session_checks"] == 0


def test_certified_check_on_a_session_bypasses_the_warm_path():
    session = SmtSession()
    session.assert_base(_box(0, 10))
    session.check()  # warm the session so the fallback delta is isolated
    before = GLOBAL_COUNTERS.snapshot()
    solver = session.certified_check([_box(0, 10), _box(20, 30)])
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert solver.proof_log.result == UNSAT
    assert delta["session_checks"] == 0
    assert delta["proof_fallbacks"] == 1
    assert delta["checks"] >= 1


def test_warm_share_is_well_defined():
    """Over any window, session_checks never outruns checks, and a
    purely session+certified workload splits checks exactly."""
    before = GLOBAL_COUNTERS.snapshot()
    session = SmtSession()
    session.assert_base(_box(0, 5))
    session.check()
    scope = session.push(_box(7, 9), label="probe")
    session.check()
    scope.retract()
    certified_solver([_box(0, 1)])
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert 0 <= delta["session_checks"] <= delta["checks"]
    assert delta["checks"] == delta["session_checks"] + delta["proof_fallbacks"]
