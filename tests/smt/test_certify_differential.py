"""Differential certification: random mixed LRA/LIA formulas solved
against brute-force enumeration, with every UNSAT verdict audited.

The real variable is enumerated over a quarter-integer grid.  That grid
is *exact* for the atom family generated here: every atom bound on
``r`` falls on a multiple of 1/2 (real coefficients are 1 or 2, other
terms and constants are integers), so any satisfiable region inside the
box contains either a half-integer endpoint or an open interval of
width >= 1/2, whose quarter-integer midpoint the grid hits, and the
points a ``!=`` atom removes are half-integers, never midpoints.
"""

import itertools
import random
from fractions import Fraction

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.analysis import audit_proof
from repro.smt import (
    REAL,
    SAT,
    UNSAT,
    BVar,
    LinExpr,
    Not,
    Solver,
    Var,
    compare,
    conj,
    disj,
    negate,
)

X = Var("x")
Y = Var("y")
R = Var("r", REAL)
P = BVar("p")
INT_DOMAIN = range(-3, 4)
REAL_DOMAIN = [Fraction(k, 4) for k in range(-12, 13)]


def random_formula(rng: random.Random, depth: int = 0):
    ex, ey, er = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(R)
    if depth >= 2 or rng.random() < 0.4:
        kind = rng.random()
        if kind < 0.15:
            return P if rng.random() < 0.5 else Not(P)
        lhs = rng.choice(
            [ex, ey, ex + ey, ex - ey, ex * 2, er, er * 2, er + ex, er - ey]
        )
        op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
        return compare(lhs, op, LinExpr.const_expr(rng.randint(-5, 5)))
    parts = [random_formula(rng, depth + 1) for _ in range(rng.randint(2, 3))]
    formula = (conj if rng.random() < 0.5 else disj)(parts)
    if rng.random() < 0.3:
        formula = negate(formula)
    return formula


def brute_force_sat(formula) -> bool:
    for xv, yv, rv in itertools.product(INT_DOMAIN, INT_DOMAIN, REAL_DOMAIN):
        values = {X: xv, Y: yv, R: rv}
        for pv in (False, True):
            if formula.evaluate(values, {P: pv}):
                return True
    return False


def domain_box():
    ex, ey, er = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(R)
    c = LinExpr.const_expr
    bounds = []
    for expr in (ex, ey, er):
        bounds.append(compare(expr, ">=", c(-3)))
        bounds.append(compare(expr, "<=", c(3)))
    return conj(bounds)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
# Historical failure: delta concretization ignored competing non-strict
# bounds and emitted a model outside the box (fixed in simplex.py).
@example(seed=4990)
def test_verdicts_match_bruteforce_and_unsat_proofs_audit_clean(seed):
    rng = random.Random(seed)
    formula = random_formula(rng)
    boxed = conj([formula, domain_box()])
    solver = Solver(proof=True)
    solver.add(boxed)
    verdict = solver.check()
    expected = brute_force_sat(formula)
    assert (verdict == SAT) == expected, formula
    if verdict == SAT:
        model = solver.model()
        assert model.satisfies(boxed), (formula, model.values, model.booleans)
    else:
        assert verdict == UNSAT
        log = solver.proof_log
        assert log is not None and log.result == UNSAT and log.has_refutation
        assert audit_proof(log) == [], formula
