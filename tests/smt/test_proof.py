"""Proof-log structure tests for ``Solver(proof=True)``.

Covers the DRAT/RUP clause log produced by the CDCL core, the theory
certificates attached by simplex / branch-and-bound, result stamping,
assumption-relative refutations, and the regression that branch-and-
bound pseudo-tags never leak into surfaced conflict cores.  Semantic
*auditing* of the logs lives in ``tests/analysis/test_certify.py``.
"""

from fractions import Fraction

import pytest

from repro.smt import (
    EQ,
    LE,
    REAL,
    SAT,
    UNSAT,
    Atom,
    FarkasCert,
    LinExpr,
    Not,
    Solver,
    SplitCert,
    TheoryConflict,
    Var,
    compare,
    conj,
    disj,
)
from repro.smt.theory import _BranchTag, check_conjunction

X = Var("x")
Y = Var("y")
R = Var("r", REAL)
S = Var("s", REAL)
ex, ey = LinExpr.var(X), LinExpr.var(Y)
er, es = LinExpr.var(R), LinExpr.var(S)
c = LinExpr.const_expr


def fractional_window():
    """Mixed int/real system that is LRA-feasible but LIA-infeasible:
    ``r = x`` with ``3/10 <= r <= 7/10`` forces a branch on ``x``."""
    return conj(
        [
            compare(er, "=", ex),
            compare(er, ">=", c(Fraction(3, 10))),
            compare(er, "<=", c(Fraction(7, 10))),
        ]
    )


# ----------------------------------------------------------------------
# Result stamping and refutation presence
# ----------------------------------------------------------------------
def test_sat_result_is_stamped_without_refutation():
    solver = Solver(proof=True)
    solver.add(compare(ex, "<", c(10)))
    assert solver.check() == SAT
    log = solver.proof_log
    assert log is not None
    assert log.result == SAT
    assert not log.has_refutation


def test_unsat_lra_log_has_refutation_and_certified_lemmas():
    solver = Solver(proof=True)
    solver.add(conj([compare(er, "<", c(0)), compare(er, ">", c(0))]))
    assert solver.check() == UNSAT
    log = solver.proof_log
    assert log.result == UNSAT
    assert log.has_refutation
    theory = log.theory_steps()
    assert theory, "expected at least one theory lemma"
    for step in theory:
        assert step.cert is not None
    assert any(isinstance(s.cert, FarkasCert) for s in theory)


def test_proof_disabled_by_default():
    solver = Solver()
    solver.add(compare(ex, "<", c(0)))
    solver.check()
    assert solver.proof_log is None


def test_trivially_false_formula_logs_axiomatic_refutation():
    solver = Solver(proof=True)
    solver.add(compare(c(1), "<=", c(0)))
    assert solver.check() == UNSAT
    log = solver.proof_log
    assert log.result == UNSAT
    assert log.has_refutation


def test_result_restamped_across_checks():
    solver = Solver(proof=True)
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(10))]))
    assert solver.check() == SAT
    assert solver.proof_log.result == SAT
    solver.add(compare(ex, ">=", c(11)))
    assert solver.check() == UNSAT
    assert solver.proof_log.result == UNSAT
    assert solver.proof_log.has_refutation


# ----------------------------------------------------------------------
# Assumption-relative refutations
# ----------------------------------------------------------------------
def test_assumption_unsat_records_assumptions_on_empty_step():
    solver = Solver(proof=True)
    solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(10))]))
    assert solver.check(assumptions=[Atom(c(20) - ex, LE)]) == UNSAT
    log = solver.proof_log
    empty = [s for s in log.steps if not s.lits]
    assert empty, "expected an assumption-relative empty clause"
    assert any(s.assumptions for s in empty)
    # The refutation was relative to the assumption only: dropping it
    # must restore satisfiability.
    assert solver.check() == SAT
    assert solver.proof_log.result == SAT


# ----------------------------------------------------------------------
# Branch-and-bound: split certificates, no pseudo-tag leakage
# ----------------------------------------------------------------------
def test_branch_tags_never_leak_into_conflict_core():
    constraints = [
        (Atom(er - ex, EQ), 1),
        (Atom(c(Fraction(3, 10)) - er, LE), 2),
        (Atom(er - Fraction(7, 10), LE), 3),
    ]
    with pytest.raises(TheoryConflict) as excinfo:
        check_conjunction(constraints)
    conflict = excinfo.value
    assert not any(isinstance(tag, _BranchTag) for tag in conflict.core)
    assert conflict.core <= {1, 2, 3}
    assert isinstance(conflict.cert, SplitCert)


def test_solver_blocking_clauses_use_only_sat_literals():
    solver = Solver(proof=True)
    solver.add(fractional_window())
    assert solver.check() == UNSAT
    log = solver.proof_log
    assert any(isinstance(s.cert, SplitCert) for s in log.theory_steps())
    for step in log.steps:
        for lit in step.lits:
            assert isinstance(lit, int) and lit != 0
            assert abs(lit) in log.atoms


# ----------------------------------------------------------------------
# Core minimization (deletion-based)
# ----------------------------------------------------------------------
def minimization_formula():
    """UNSAT formula whose natural conflict cores can carry slack: a
    redundant pair of wide bounds rides along with the real conflict."""
    return conj(
        [
            disj([compare(ey, "<=", c(50)), compare(ey, ">=", c(60))]),
            compare(ey, ">=", c(-1000)),
            compare(ey, "<=", c(1000)),
            fractional_window(),
        ]
    )


def test_minimize_cores_preserves_verdict():
    plain = Solver(proof=True)
    plain.add(minimization_formula())
    assert plain.check() == UNSAT

    minimized = Solver(proof=True, minimize_cores=True)
    minimized.add(minimization_formula())
    assert minimized.check() == UNSAT

    def max_blocking(log):
        sizes = [len(s.lits) for s in log.theory_steps()]
        return max(sizes) if sizes else 0

    assert max_blocking(minimized.proof_log) <= max_blocking(plain.proof_log)
    for step in minimized.proof_log.theory_steps():
        assert step.cert is not None
