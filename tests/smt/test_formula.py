"""Unit tests for formula construction, NNF and DNF."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smt import (
    EQ,
    FALSE,
    LE,
    LT,
    NE,
    TRUE,
    And,
    Atom,
    BVar,
    DnfBlowupError,
    LinExpr,
    Not,
    Or,
    Var,
    compare,
    conj,
    disj,
    negate,
    to_dnf,
    to_nnf,
)

X = Var("x")
Y = Var("y")
ex = LinExpr.var(X)
ey = LinExpr.var(Y)


def test_compare_normalizes_direction():
    lt = compare(ex, "<", ey)
    gt = compare(ey, ">", ex)
    assert lt == gt


def test_compare_constant_folds():
    assert compare(LinExpr.const_expr(1), "<", LinExpr.const_expr(2)) is TRUE
    assert compare(LinExpr.const_expr(3), "<", LinExpr.const_expr(2)) is FALSE
    assert compare(LinExpr.const_expr(2), "=", LinExpr.const_expr(2)) is TRUE


def test_compare_rejects_unknown_op():
    with pytest.raises(ValueError):
        compare(ex, "~", ey)


def test_atom_negation_roundtrip():
    atom = Atom(ex - 5, LE)
    assert atom.negated().negated() == atom
    eq_atom = Atom(ex, EQ)
    assert eq_atom.negated().op == NE


def test_atom_negation_is_complementary():
    atom = Atom(ex - 5, LT)
    for val in (-10, 4, 5, 6, 10):
        holds = atom.holds(LinExpr.var(X).evaluate({X: val}) - 5)
        negated = atom.negated()
        holds_neg = negated.holds(negated.expr.evaluate({X: val}))
        assert holds != holds_neg


def test_conj_flattening_and_folding():
    a = Atom(ex, LE)
    b = Atom(ey, LT)
    assert conj([]) is TRUE
    assert conj([a]) is a
    assert conj([a, TRUE, b]) == And([a, b])
    assert conj([a, FALSE]) is FALSE
    nested = conj([conj([a, b]), a])
    assert isinstance(nested, And)
    assert len(nested.args) == 3


def test_disj_flattening_and_folding():
    a = Atom(ex, LE)
    assert disj([]) is FALSE
    assert disj([a, TRUE]) is TRUE
    assert disj([FALSE, a]) is a


def test_negate_shallow():
    a = Atom(ex, LE)
    assert negate(TRUE) is FALSE
    assert negate(negate(And([a, a]))) == And([a, a])
    assert negate(a) == a.negated()


def test_nnf_pushes_negation():
    a = Atom(ex, LE)
    b = Atom(ey, LT)
    formula = Not(And([a, Or([b, Not(a)])]))
    nnf = to_nnf(formula)
    # ~(a & (b | ~a)) == ~a | (~b & a)
    assert isinstance(nnf, Or)

    def no_not_above_leaf(node):
        if isinstance(node, Not):
            return isinstance(node.arg, BVar)
        if isinstance(node, (And, Or)):
            return all(no_not_above_leaf(arg) for arg in node.args)
        return True

    assert no_not_above_leaf(nnf)


def test_nnf_splits_disequality():
    formula = Not(Atom(ex - 3, EQ))
    nnf = to_nnf(formula)
    assert isinstance(nnf, Or)
    assert all(arg.op == LT for arg in nnf.args)


def test_nnf_keeps_ne_when_asked():
    formula = Not(Atom(ex - 3, EQ))
    nnf = to_nnf(formula, split_ne=False)
    assert isinstance(nnf, Atom)
    assert nnf.op == NE


def test_nnf_on_boolean_vars():
    b = BVar("is_null")
    assert to_nnf(Not(Not(b))) is b
    assert to_nnf(Not(b)) == Not(b)


def test_evaluate():
    formula = conj([compare(ex, "<", ey), compare(ey, "<=", LinExpr.const_expr(10))])
    assert formula.evaluate({X: 1, Y: 5})
    assert not formula.evaluate({X: 6, Y: 5})
    assert not formula.evaluate({X: 1, Y: 11})


def test_evaluate_with_booleans():
    b = BVar("flag")
    formula = disj([b, compare(ex, "<", LinExpr.const_expr(0))])
    assert formula.evaluate({X: 5}, {b: True})
    assert not formula.evaluate({X: 5}, {b: False})


def test_variables_collection():
    formula = conj([compare(ex, "<", ey), Not(Atom(ex, EQ))])
    assert formula.variables() == {X, Y}


def test_atoms_in_order():
    a = Atom(ex, LE)
    b = Atom(ey, LT)
    formula = conj([a, disj([b, a])])
    assert formula.atoms() == [a, b]


def test_dnf_of_conjunction():
    a = Atom(ex, LE)
    b = Atom(ey, LT)
    cubes = to_dnf(conj([a, b]))
    assert cubes == [[a, b]]


def test_dnf_distributes():
    a = Atom(ex, LE)
    b = Atom(ey, LT)
    c = Atom(ex - 1, LT)
    cubes = to_dnf(conj([disj([a, b]), c]))
    assert len(cubes) == 2
    assert all(c in cube for cube in cubes)


def test_dnf_true_false():
    assert to_dnf(TRUE) == [[]]
    assert to_dnf(FALSE) == []


def test_dnf_blowup_guard():
    atoms_x = [Atom(ex - i, LE) for i in range(30)]
    atoms_y = [Atom(ey - i, LT) for i in range(30)]
    formula = conj(
        [disj([ax, ay]) for ax, ay in zip(atoms_x, atoms_y)]
    )
    with pytest.raises(DnfBlowupError):
        to_dnf(formula)


@given(
    x=st.integers(min_value=-50, max_value=50),
    y=st.integers(min_value=-50, max_value=50),
)
def test_nnf_preserves_semantics(x, y):
    formula = Not(
        And(
            [
                compare(ex - 3, "<", ey),
                Or([compare(ey, "=", LinExpr.const_expr(7)), Not(Atom(ex, LE))]),
            ]
        )
    )
    assignment = {X: x, Y: y}
    assert formula.evaluate(assignment) == to_nnf(formula).evaluate(assignment)


@given(
    x=st.integers(min_value=-50, max_value=50),
    y=st.integers(min_value=-50, max_value=50),
)
def test_dnf_preserves_semantics(x, y):
    formula = And(
        [
            Or([compare(ex, "<", ey), compare(ex, "=", LinExpr.const_expr(0))]),
            Or([compare(ey, "<=", LinExpr.const_expr(5)), compare(ex, ">", ey)]),
        ]
    )
    assignment = {X: x, Y: y}
    cubes = to_dnf(formula)
    dnf_value = any(all(atom.evaluate(assignment) for atom in cube) for cube in cubes)
    assert formula.evaluate(assignment) == dnf_value
