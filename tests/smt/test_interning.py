"""Hash-consing invariants for terms and formulas.

Two properties carry the identity-keyed caches (memoized CNF, NNF,
linearization): structural equality must imply object identity, and the
intern tables must hold nodes weakly so one long process serving many
sessions does not accumulate dead queries' vocabularies.
"""

import gc
import pickle
from fractions import Fraction

from repro.smt import Atom, LE, LT, LinExpr, Var, conj, disj
from repro.smt.formula import And, BVar, Not, Or, to_nnf
from repro.smt.terms import INT, REAL


def test_var_structural_equality_implies_identity():
    assert Var("a") is Var("a")
    assert Var("a", REAL) is Var("a", REAL)
    assert Var("a") is not Var("a", REAL)
    assert Var("a") is not Var("b")


def test_linexpr_structural_equality_implies_identity():
    x = Var("ix")
    assert LinExpr({x: 2}, 3) is LinExpr({x: Fraction(2)}, Fraction(3))
    # Zero coefficients normalise away before interning.
    assert LinExpr({x: 0}, 3) is LinExpr.const_expr(3)
    assert LinExpr({x: 1}) is LinExpr.var(x)


def test_arithmetic_returns_canonical_instances():
    x = LinExpr.var(Var("ix"))
    assert (x + 5) - 5 is x
    assert (x * 2) / 2 is x
    assert -(-x) is x


def test_formula_nodes_intern():
    x = LinExpr.var(Var("ix"))
    assert Atom(x, LE) is Atom(x, LE)
    assert BVar("ib") is BVar("ib")
    assert Not(BVar("ib")) is Not(BVar("ib"))
    a, b = Atom(x, LE), Atom(x - 1, LT)
    assert conj([a, b]) is conj([a, b])
    assert disj([a, b]) is disj([a, b])
    # And/Or with identical args are distinct nodes.
    assert And([a, b]) is not Or([a, b])


def test_nnf_is_memoized_on_identity():
    x = LinExpr.var(Var("ix"))
    formula = Not(conj([Atom(x, LE), BVar("ib")]))
    assert to_nnf(formula) is to_nnf(formula)


def test_pickle_round_trip_reinterns():
    x = LinExpr.var(Var("ix"))
    formula = conj([Atom(x - 4, LE), disj([Not(BVar("ib")), Atom(x, LT)])])
    revived = pickle.loads(pickle.dumps(formula))
    assert revived is formula


def test_intern_tables_do_not_leak_across_sessions():
    def build():
        vars_ = [Var(f"__leak_{i}") for i in range(40)]
        return [Atom(LinExpr({v: 1}, i), LE) for i, v in enumerate(vars_)]

    atoms = build()
    assert sum(1 for name, _ in Var._intern if name.startswith("__leak_")) == 40
    del atoms
    gc.collect()
    assert not [name for name, _ in Var._intern if name.startswith("__leak_")]
    leaked_exprs = [
        key
        for key in LinExpr._intern
        for var, _ in key[0]
        if var.name.startswith("__leak_")
    ]
    assert not leaked_exprs


def test_interned_nodes_hash_consistently():
    x = Var("ix")
    e1 = LinExpr({x: 1}, 2)
    e2 = LinExpr({x: Fraction(1)}, Fraction(2))
    assert hash(e1) == hash(e2) and e1 == e2
    assert len({e1, e2}) == 1
