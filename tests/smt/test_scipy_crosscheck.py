"""Cross-validation of the simplex against scipy.optimize.linprog.

scipy is an independent LP implementation: random conjunctions of
linear constraints must agree on feasibility between our
delta-rational simplex (rational relaxation) and scipy's HiGHS solver.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.smt import LE, REAL, Atom, LinExpr, Var
from repro.smt.simplex import Simplex, TheoryConflict

X = Var("x", REAL)
Y = Var("y", REAL)
Z = Var("z", REAL)
VARS = [X, Y, Z]


def our_feasible(rows: list[tuple[list[int], int]]) -> bool:
    """Feasibility of ``sum(a_i x_i) <= b`` rows via our simplex."""
    simplex = Simplex()
    try:
        for index, (coeffs, rhs) in enumerate(rows):
            expr = LinExpr(dict(zip(VARS, coeffs)), -rhs)
            simplex.assert_atom(Atom(expr, LE), index)
        simplex.check()
        return True
    except TheoryConflict:
        return False


def scipy_feasible(rows: list[tuple[list[int], int]]) -> bool:
    a_ub = np.array([coeffs for coeffs, _ in rows], dtype=float)
    b_ub = np.array([rhs for _, rhs in rows], dtype=float)
    result = linprog(
        c=np.zeros(3),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(None, None)] * 3,
        method="highs",
    )
    return result.status == 0


coeff = st.integers(min_value=-6, max_value=6)
rhs = st.integers(min_value=-30, max_value=30)
row = st.tuples(st.lists(coeff, min_size=3, max_size=3), rhs)


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row, min_size=1, max_size=8))
def test_feasibility_matches_scipy(rows):
    cleaned = [(list(coeffs), b) for coeffs, b in rows]
    # Skip all-zero rows with negative rhs ambiguity? No: both solvers
    # must handle 0 <= b consistently.
    assert our_feasible(cleaned) == scipy_feasible(cleaned)


def test_known_feasible():
    rows = [([1, 1, 0], 10), ([-1, 0, 0], 0), ([0, -1, 0], 0)]
    assert our_feasible(rows) and scipy_feasible(rows)


def test_known_infeasible():
    rows = [([1, 0, 0], -1), ([-1, 0, 0], -1)]  # x <= -1 and x >= 1
    assert not our_feasible(rows)
    assert not scipy_feasible(rows)


def test_thin_sliver_feasible():
    rows = [([64, -49, 0], 10), ([-64, 49, 0], -9)]  # 9 <= 64x - 49y <= 10
    assert our_feasible(rows) == scipy_feasible(rows) is True


@settings(max_examples=30, deadline=None)
@given(rows=st.lists(row, min_size=1, max_size=6))
def test_model_satisfies_all_rows_when_feasible(rows):
    cleaned = [(list(coeffs), b) for coeffs, b in rows]
    simplex = Simplex()
    try:
        for index, (coeffs, b) in enumerate(cleaned):
            expr = LinExpr(dict(zip(VARS, coeffs)), -b)
            simplex.assert_atom(Atom(expr, LE), index)
        assignment = simplex.check()
    except TheoryConflict:
        return
    from repro.smt.simplex import concrete_model

    model = concrete_model(assignment, [])
    for coeffs, b in cleaned:
        total = sum(c * model.get(v, 0) for c, v in zip(coeffs, VARS))
        assert total <= b
