"""Regression tests for the incremental bound-ordering lemmas.

The lemmas are pure accelerators: they must never change
satisfiability, across any interleaving of checks and additions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    NE,
    SAT,
    UNSAT,
    Atom,
    LinExpr,
    Solver,
    Var,
    compare,
    conj,
    disj,
)

X = Var("x")
Y = Var("y")
ex, ey = LinExpr.var(X), LinExpr.var(Y)
c = LinExpr.const_expr


def paired_solvers():
    return Solver(ordering_lemmas=True), Solver(ordering_lemmas=False)


def test_many_bounds_same_variable_agree():
    constraints = [
        compare(ex, ">=", c(0)),
        compare(ex, "<=", c(50)),
        compare(ex, ">", c(10)),
        compare(ex, "<", c(12)),
    ]
    for solver in paired_solvers():
        solver.add(conj(constraints))
        assert solver.check() == SAT
        assert solver.model().int_value(X) == 11


def test_contradictory_bounds_agree():
    constraints = [compare(ex, "<", c(10)), compare(ex, ">", c(10))]
    for solver in paired_solvers():
        solver.add(conj(constraints))
        assert solver.check() == UNSAT


def test_equality_atom_lemmas():
    formula = conj(
        [
            compare(ex, "=", c(7)),
            disj([compare(ex, "<", c(3)), compare(ex, ">", c(5))]),
        ]
    )
    for solver in paired_solvers():
        solver.add(formula)
        assert solver.check() == SAT
        assert solver.model().int_value(X) == 7


def test_two_conflicting_equalities():
    formula = conj([compare(ex, "=", c(7)), compare(ex, "=", c(8))])
    for solver in paired_solvers():
        solver.add(formula)
        assert solver.check() == UNSAT


def test_incremental_additions_between_checks():
    for solver in paired_solvers():
        solver.add(conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(5))]))
        assert solver.check() == SAT
        solver.add(compare(ex, ">=", c(4)))
        assert solver.check() == SAT
        assert solver.model().int_value(X) >= 4
        solver.add(compare(ex, "<", c(4)))
        assert solver.check() == UNSAT


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    num_bounds=st.integers(min_value=1, max_value=12),
)
def test_random_interval_systems_agree(seed, num_bounds):
    rng = random.Random(seed)
    parts = []
    for _ in range(num_bounds):
        var_expr = ex if rng.random() < 0.5 else ey
        op = rng.choice(["<", "<=", ">", ">=", "="])
        parts.append(compare(var_expr, op, c(rng.randint(-10, 10))))
    formula = conj(parts)
    with_lemmas, without = paired_solvers()
    with_lemmas.add(formula)
    without.add(formula)
    assert with_lemmas.check() == without.check()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_enumeration_with_notold_agrees(seed):
    """The NotOld pattern (the lemmas' raison d'etre) yields the same
    model count with and without them."""
    rng = random.Random(seed)
    lo, hi = sorted(rng.sample(range(-10, 10), 2))
    base = conj([compare(ex, ">=", c(lo)), compare(ex, "<=", c(hi))])

    def count_models(flag):
        solver = Solver(ordering_lemmas=flag)
        solver.add(base)
        seen = 0
        while solver.check() == SAT and seen <= 25:
            value = solver.model().value(X)
            solver.add(Atom(LinExpr.var(X) - value, NE))
            seen += 1
        return seen

    assert count_models(True) == count_models(False) == hi - lo + 1
