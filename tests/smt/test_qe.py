"""Tests for quantifier elimination and the unsatisfaction-tuple region."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    FALSE,
    REAL,
    TRUE,
    LinExpr,
    Var,
    compare,
    conj,
    disj,
    eliminate_exists,
    get_model,
    is_satisfiable,
    negate,
    unsat_region,
)

A1 = Var("a1")
A2 = Var("a2")
B1 = Var("b1")
e_a1, e_a2, e_b1 = LinExpr.var(A1), LinExpr.var(A2), LinExpr.var(B1)
c = LinExpr.const_expr


def motivating_predicate():
    """a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0 (section 3.2)."""
    return conj(
        [
            compare(e_a2 - e_b1, "<", c(20)),
            compare(e_a1 - e_a2, "<", e_a2 - e_b1 + 10),
            compare(e_b1, "<", c(0)),
        ]
    )


def test_eliminate_unconstrained_var():
    formula = compare(e_a1, "<", c(5))
    result = eliminate_exists(formula, {B1})
    # Semantically unchanged (the projection may integer-tighten the atom).
    assert not is_satisfiable(
        conj([result.formula, negate(formula)])
    ) and not is_satisfiable(conj([formula, negate(result.formula)]))
    assert result.exact


def test_eliminate_fully():
    formula = conj([compare(e_b1, ">", c(0)), compare(e_b1, "<", c(10))])
    result = eliminate_exists(formula, {B1})
    assert result.formula is TRUE


def test_eliminate_infeasible_cube():
    formula = conj([compare(e_b1, ">", c(10)), compare(e_b1, "<", c(0))])
    result = eliminate_exists(formula, {B1})
    assert result.formula is FALSE


def test_equality_substitution():
    # exists b1. b1 = a1 + 1 and b1 < 5  <=>  a1 < 4
    formula = conj([compare(e_b1, "=", e_a1 + 1), compare(e_b1, "<", c(5))])
    result = eliminate_exists(formula, {B1})
    assert result.exact
    model = get_model(conj([result.formula, compare(e_a1, "=", c(3))]))
    assert model is not None
    assert not is_satisfiable(conj([result.formula, compare(e_a1, "=", c(4))]))


def test_fm_projection_interval():
    # exists b1. a1 < b1 < a2  <=>  a1 < a2 - 1 over integers (tightened)
    formula = conj([compare(e_a1, "<", e_b1), compare(e_b1, "<", e_a2)])
    result = eliminate_exists(formula, {B1})
    assert result.exact
    assert is_satisfiable(
        conj([result.formula, compare(e_a1, "=", c(0)), compare(e_a2, "=", c(2))])
    )
    assert not is_satisfiable(
        conj([result.formula, compare(e_a1, "=", c(0)), compare(e_a2, "=", c(1))])
    )


def test_fm_projection_reals_keeps_strictness():
    ra1, ra2, rb = Var("ra1", REAL), Var("ra2", REAL), Var("rb", REAL)
    formula = conj(
        [
            compare(LinExpr.var(ra1), "<", LinExpr.var(rb)),
            compare(LinExpr.var(rb), "<", LinExpr.var(ra2)),
        ]
    )
    result = eliminate_exists(formula, {rb})
    # Over the reals a value strictly between exists iff ra1 < ra2.
    assert is_satisfiable(
        conj(
            [
                result.formula,
                compare(LinExpr.var(ra1), "=", c(0)),
                compare(LinExpr.var(ra2), "=", c(1)),
            ]
        )
    )
    assert not is_satisfiable(
        conj(
            [
                result.formula,
                compare(LinExpr.var(ra1), "=", c(1)),
                compare(LinExpr.var(ra2), "=", c(1)),
            ]
        )
    )


def test_unsat_region_motivating_example():
    """Section 3.2 example: the unsatisfaction region over (a1, a2) is
    exactly ``a1 - a2 > 28 or a2 > 18`` (integer-tightened).

    Note: the paper's illustrative sample coordinates are mirrored
    relative to its own stated predicate (its final predicate
    ``a1 - a2 + 29 > 0`` has the opposite sign of what the constraints
    imply); we assert the semantics of the stated predicate.
    """
    p = motivating_predicate()
    region = unsat_region(p, {A1, A2}).formula

    def in_region(a1, a2):
        return is_satisfiable(
            conj([region, compare(e_a1, "=", c(a1)), compare(e_a2, "=", c(a2))])
        )

    # Unsatisfaction tuples: a1 - a2 > 28, or a2 > 18.
    assert in_region(29, 0)
    assert in_region(0, 19)
    assert in_region(100, 50)
    # Feasible restrictions (some extension b1 satisfies p).
    assert not in_region(28, 0)
    assert not in_region(0, 18)
    assert not in_region(-53, -47)
    assert not in_region(-5, 1)


def test_unsat_region_semantics_pointwise():
    """For concrete (a1, a2): region holds iff no b1 extends to satisfy p."""
    p = motivating_predicate()
    region = unsat_region(p, {A1, A2}).formula
    for a1 in range(-60, 20, 7):
        for a2 in range(-60, 20, 7):
            fixed = conj([compare(e_a1, "=", c(a1)), compare(e_a2, "=", c(a2))])
            extension_exists = is_satisfiable(conj([p, fixed]))
            in_region = is_satisfiable(conj([region, fixed]))
            assert in_region == (not extension_exists), (a1, a2)


def test_unsat_region_of_unconstrained_predicate():
    # p touches only b1: every restriction to (a1,) is feasible iff p is sat.
    p = compare(e_b1, "<", c(0))
    region = unsat_region(p, {A1}).formula
    assert not is_satisfiable(region)


def test_unsat_region_with_disjunction():
    p = disj(
        [
            conj([compare(e_a1, "<", c(0)), compare(e_b1, "<", c(0))]),
            conj([compare(e_a1, ">", c(10)), compare(e_b1, ">", c(0))]),
        ]
    )
    region = unsat_region(p, {A1}).formula
    # a1 = 5 cannot be extended; a1 = -1 and a1 = 11 can.
    assert is_satisfiable(conj([region, compare(e_a1, "=", c(5))]))
    assert not is_satisfiable(conj([region, compare(e_a1, "=", c(-1))]))
    assert not is_satisfiable(conj([region, compare(e_a1, "=", c(11))]))


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=-30, max_value=30),
    gap=st.integers(min_value=1, max_value=20),
    a1=st.integers(min_value=-60, max_value=60),
)
def test_unsat_region_random_intervals(k, gap, a1):
    # p: a1 < b1 and b1 < k, with b1 in (a1, k); restriction a1 feasible
    # iff a1 <= k - 2 over integers.
    p = conj([compare(e_a1, "<", e_b1), compare(e_b1, "<", c(k))])
    region = unsat_region(p, {A1}).formula
    fixed = compare(e_a1, "=", c(a1))
    expected_infeasible = a1 > k - 2
    assert is_satisfiable(conj([region, fixed])) == expected_infeasible
    del gap


def test_exactness_flag_for_unit_coefficients():
    p = conj([compare(e_a1 - e_b1, "<", c(20)), compare(e_b1, "<", c(0))])
    assert unsat_region(p, {A1}).exact


def test_inexact_flag_for_nonunit_coefficients():
    p = conj(
        [
            compare(e_b1 * 2, "<", e_a1),
            compare(e_a1 - 100, "<", e_b1 * 3),
        ]
    )
    result = unsat_region(p, {A1})
    # 2 and 3 as eliminated coefficients: dark-shadow condition fails.
    assert not result.exact
