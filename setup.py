"""Legacy setup shim: this offline environment lacks the `wheel` package,
so editable installs must go through setuptools' develop command."""

from setuptools import setup

setup()
